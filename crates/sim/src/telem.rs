//! TelePlane: windowed time-series telemetry and an anomaly-triggered
//! flight recorder.
//!
//! End-of-run aggregates (PR 2's [`crate::metrics`]) answer "how much
//! in total"; an operator diagnosing an SLO breach needs "when, and
//! what else was happening". This module adds the time-resolved layer:
//!
//! * [`TimeSeries`] — named counters, gauges and histograms bucketed
//!   into fixed sim-time windows of configurable width, with a bounded
//!   ring of closed-window aggregates, lifetime totals, canonical JSON
//!   export, and [`Snapshot`]/[`Restore`] support. Everything is
//!   driven by simulated time, so exports are byte-identical at any
//!   `ECOSCALE_THREADS`/`ECOSCALE_SHARDS` setting.
//! * [`FlightRecorder`] — an always-on bounded ring of recent trace
//!   events. Disabled, every call is a single branch on an `Option`
//!   and allocates nothing; armed, the ring is allocated once up
//!   front. A [`TriggerPolicy`] decides which anomalies (SLO-breach
//!   windows, queue saturation, CheckPlane violations, resilience
//!   quarantine) latch a [`TriggerFire`], after which the ring plus
//!   the time-series tail form a deterministic evidence bundle.
//!
//! The conservation contract between the two layers is checkable:
//! for every windowed counter, the counts in the retained ring plus
//! the counts evicted from it plus the open window must sum to the
//! lifetime total ([`TimeSeries::check_conservation`], registered as
//! `telem.window_conserved` in the invariant catalog).

use std::collections::{BTreeMap, VecDeque};

use crate::check::{invariant, CheckPlane};
use crate::json;
use crate::snap::{malformed, Restore, RestoreError, SnapReader, SnapWriter, Snapshot};
use crate::stats::Histogram;
use crate::time::{Duration, Time};

/// Telemetry plane configuration: window width, ring depths, and the
/// flight-recorder trigger policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Width of one time-series window in simulated time.
    pub window: Duration,
    /// How many closed windows the series ring retains.
    pub retain: usize,
    /// Flight-recorder ring capacity (events).
    pub flight: usize,
    /// Which anomalies latch a flight-recorder trigger.
    pub policy: TriggerPolicy,
}

impl TelemetryConfig {
    /// A config with the given window width and default ring depths
    /// (64 retained windows, 128 flight events, all triggers armed).
    pub fn new(window: Duration) -> TelemetryConfig {
        TelemetryConfig {
            window,
            retain: 64,
            flight: 128,
            policy: TriggerPolicy::default(),
        }
    }
}

/// One windowed counter: the open-window count plus the bookkeeping
/// needed to prove conservation against the lifetime total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WinCounter {
    /// Count in the open window.
    cur: u64,
    /// Lifetime total across all windows.
    total: u64,
    /// Counts attributed to windows evicted from the ring.
    evicted: u64,
}

/// Closed-window aggregate: one entry in the [`TimeSeries`] ring.
///
/// Histograms are kept raw (not as percentile summaries) so per-cell
/// series merge exactly; percentiles are computed at export time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowAgg {
    /// Window index (window `i` covers `[i*width, (i+1)*width)`).
    pub index: u64,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    hists: Vec<(String, Histogram)>,
}

impl WindowAgg {
    /// The count a named counter contributed to this window.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The sampled level of a named gauge in this window.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The windowed histogram recorded under `name`, if any.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    fn merge(&mut self, other: &WindowAgg) {
        debug_assert_eq!(self.index, other.index);
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.hists {
            match self.hists.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.hists.push((name.clone(), h.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.hists.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

/// Named instruments bucketed into fixed sim-time windows.
///
/// Callers drive the clock explicitly: [`TimeSeries::advance`] closes
/// every window that ends at or before `now`, pushing its aggregate
/// into a bounded ring; recording calls then land in the open window.
/// Counters keep a lifetime total beside the window count, gauges are
/// sampled levels that persist across rolls, histograms reset per
/// window but stay raw in the ring so series merge exactly.
///
/// # Example
///
/// ```
/// use ecoscale_sim::{Duration, Time, TimeSeries};
///
/// let mut ts = TimeSeries::new(Duration::from_us(10), 8);
/// ts.incr("req", 3);
/// ts.advance(Time::ZERO + Duration::from_us(25));
/// ts.incr("req", 1);
/// ts.finish(Time::ZERO + Duration::from_us(25));
/// assert_eq!(ts.lifetime("req"), 4);
/// assert_eq!(ts.windows().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    width: Duration,
    retain: usize,
    /// Index of the open window.
    open: u64,
    /// Number of windows closed so far.
    rolled: u64,
    counters: BTreeMap<String, WinCounter>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    ring: VecDeque<WindowAgg>,
}

impl TimeSeries {
    /// Creates a series with the given window width, retaining up to
    /// `retain` closed windows.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `retain` is zero.
    pub fn new(width: Duration, retain: usize) -> TimeSeries {
        assert!(!width.is_zero(), "window width must be non-zero");
        assert!(retain > 0, "must retain at least one window");
        TimeSeries {
            width,
            retain,
            open: 0,
            rolled: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            ring: VecDeque::with_capacity(retain),
        }
    }

    /// The configured window width.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// Number of windows closed so far.
    pub fn rolled(&self) -> u64 {
        self.rolled
    }

    /// Adds `n` to the counter `name` in the open window.
    pub fn incr(&mut self, name: &str, n: u64) {
        let c = self.counters.entry(name.to_owned()).or_default();
        c.cur += n;
        c.total += n;
    }

    /// Sets the gauge `name` to level `v` (persists across rolls).
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        *self.gauges.entry(name.to_owned()).or_default() = v;
    }

    /// Records `v` into the open window's histogram `name`.
    pub fn record(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_owned()).or_default().record(v);
    }

    /// Merges a pre-accumulated histogram into the open window's
    /// histogram `name` (how drivers hand over a window's worth of
    /// latencies in one call).
    pub fn merge_hist(&mut self, name: &str, h: &Histogram) {
        self.hists.entry(name.to_owned()).or_default().merge(h);
    }

    /// The index of the window containing `t`.
    pub fn window_index(&self, t: Time) -> u64 {
        t.as_ps() / self.width.as_ps()
    }

    /// Lifetime total of the counter `name` across all windows.
    pub fn lifetime(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.total).unwrap_or(0)
    }

    /// Closes every window that ends at or before `now`.
    pub fn advance(&mut self, now: Time) {
        let w = self.width.as_ps();
        while (self.open + 1).saturating_mul(w) <= now.as_ps() {
            self.close_open();
        }
    }

    /// Rolls up to `now`, then closes the partial open window too.
    /// Call once at end of run so the tail is exported.
    pub fn finish(&mut self, now: Time) {
        self.advance(now);
        self.close_open();
    }

    fn close_open(&mut self) {
        let agg = WindowAgg {
            index: self.open,
            counters: self
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.cur))
                .collect(),
            gauges: self.gauges.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| (n.clone(), h.clone()))
                .collect(),
        };
        for c in self.counters.values_mut() {
            c.cur = 0;
        }
        for h in self.hists.values_mut() {
            *h = Histogram::new();
        }
        self.push_agg(agg);
        self.open += 1;
        self.rolled += 1;
    }

    fn push_agg(&mut self, agg: WindowAgg) {
        if self.ring.len() == self.retain {
            let old = self.ring.pop_front().expect("ring non-empty at capacity");
            for (name, v) in &old.counters {
                self.counters.entry(name.clone()).or_default().evicted += v;
            }
        }
        self.ring.push_back(agg);
    }

    /// Iterates retained closed windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowAgg> {
        self.ring.iter()
    }

    /// The most recent `n` closed windows, oldest first.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &WindowAgg> {
        self.ring.iter().skip(self.ring.len().saturating_sub(n))
    }

    /// Checks `telem.window_conserved`: for every counter, ring counts
    /// plus evicted counts plus the open window equal the lifetime
    /// total.
    pub fn check_conservation(&self, cp: &mut CheckPlane) {
        for (name, c) in &self.counters {
            let ring_sum: u64 = self.ring.iter().map(|w| w.counter(name)).sum();
            let accounted = ring_sum + c.evicted + c.cur;
            cp.check(
                invariant::TELEM_WINDOW_CONSERVED,
                accounted == c.total,
                || {
                    format!(
                        "counter `{name}`: ring {ring_sum} + evicted {} + open {} != lifetime {}",
                        c.evicted, c.cur, c.total
                    )
                },
            );
        }
    }

    /// Folds another series into this one (cell-order merge). Window
    /// aggregates merge index-by-index: counters and gauges add,
    /// histograms merge raw. Lifetime and eviction bookkeeping add, so
    /// conservation still holds on the merged series.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.width, other.width,
            "cannot merge time series with different window widths"
        );
        for (name, c) in &other.counters {
            let mine = self.counters.entry(name.clone()).or_default();
            mine.cur += c.cur;
            mine.total += c.total;
            mine.evicted += c.evicted;
        }
        for (name, &v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_default() += v;
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
        let mut by_index: BTreeMap<u64, WindowAgg> = BTreeMap::new();
        for agg in self.ring.drain(..) {
            by_index.insert(agg.index, agg);
        }
        for agg in &other.ring {
            match by_index.get_mut(&agg.index) {
                Some(mine) => mine.merge(agg),
                None => {
                    by_index.insert(agg.index, agg.clone());
                }
            }
        }
        for (_, agg) in by_index {
            self.push_agg(agg);
        }
        self.open = self.open.max(other.open);
        self.rolled = self.rolled.max(other.rolled);
    }

    /// Renders the series as canonical JSON: window parameters,
    /// lifetime counter totals, then retained windows oldest-first with
    /// counters/gauges in name order and histogram summaries
    /// (`count`/`p50`/`p99`/`max`) computed from the raw windowed
    /// histograms. Deterministic byte-for-byte for a deterministic
    /// simulation.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.ring.len() * 128);
        out.push_str("{\"width_ns\":");
        out.push_str(&self.width.as_ns().to_string());
        out.push_str(",\"retain\":");
        out.push_str(&self.retain.to_string());
        out.push_str(",\"windows_rolled\":");
        out.push_str(&self.rolled.to_string());
        out.push_str(",\"lifetime\":{");
        let mut first = true;
        for (name, c) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            json::escape(&mut out, name);
            out.push(':');
            out.push_str(&c.total.to_string());
        }
        out.push_str("},\"windows\":[");
        let width_ns = self.width.as_ns();
        for (wi, agg) in self.ring.iter().enumerate() {
            if wi > 0 {
                out.push(',');
            }
            Self::window_json(&mut out, agg, width_ns);
        }
        out.push_str("]}");
        out
    }

    /// Renders the last `n` retained windows (oldest-first) as a JSON
    /// array of window objects — the "series tail" a flight-recorder
    /// evidence bundle carries alongside the trace ring.
    pub fn tail_json(&self, n: usize) -> String {
        let mut out = String::with_capacity(64 + n * 128);
        out.push('[');
        let width_ns = self.width.as_ns();
        for (wi, agg) in self.tail(n).enumerate() {
            if wi > 0 {
                out.push(',');
            }
            Self::window_json(&mut out, agg, width_ns);
        }
        out.push(']');
        out
    }

    fn window_json(out: &mut String, agg: &WindowAgg, width_ns: u64) {
        out.push_str("{\"index\":");
        out.push_str(&agg.index.to_string());
        out.push_str(",\"start_ns\":");
        out.push_str(&(agg.index * width_ns).to_string());
        out.push_str(",\"end_ns\":");
        out.push_str(&((agg.index + 1) * width_ns).to_string());
        out.push_str(",\"counters\":{");
        let mut f = true;
        for (name, v) in &agg.counters {
            if !f {
                out.push(',');
            }
            f = false;
            json::escape(out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        let mut f = true;
        for (name, v) in &agg.gauges {
            if !f {
                out.push(',');
            }
            f = false;
            json::escape(out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"hists\":{");
        let mut f = true;
        for (name, h) in &agg.hists {
            if !f {
                out.push(',');
            }
            f = false;
            json::escape(out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count().to_string());
            out.push_str(",\"p50\":");
            out.push_str(&h.percentile(50.0).to_string());
            out.push_str(",\"p99\":");
            out.push_str(&h.percentile(99.0).to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.max().to_string());
            out.push('}');
        }
        out.push_str("}}");
    }
}

impl Snapshot for WindowAgg {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u64(self.index);
        w.put_usize(self.counters.len());
        for (name, v) in &self.counters {
            w.put_str(name);
            w.put_u64(*v);
        }
        w.put_usize(self.gauges.len());
        for (name, v) in &self.gauges {
            w.put_str(name);
            w.put_u64(*v);
        }
        w.put_usize(self.hists.len());
        for (name, h) in &self.hists {
            w.put_str(name);
            h.snapshot(w);
        }
    }
}

impl Restore for WindowAgg {
    fn restore(r: &mut SnapReader<'_>) -> Result<WindowAgg, RestoreError> {
        let index = r.get_u64()?;
        let n = r.get_usize()?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            counters.push((name, r.get_u64()?));
        }
        let n = r.get_usize()?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            gauges.push((name, r.get_u64()?));
        }
        let n = r.get_usize()?;
        let mut hists = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            hists.push((name, Histogram::restore(r)?));
        }
        Ok(WindowAgg {
            index,
            counters,
            gauges,
            hists,
        })
    }
}

impl Snapshot for TimeSeries {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_duration(self.width);
        w.put_usize(self.retain);
        w.put_u64(self.open);
        w.put_u64(self.rolled);
        w.put_usize(self.counters.len());
        for (name, c) in &self.counters {
            w.put_str(name);
            w.put_u64(c.cur);
            w.put_u64(c.total);
            w.put_u64(c.evicted);
        }
        w.put_usize(self.gauges.len());
        for (name, &v) in &self.gauges {
            w.put_str(name);
            w.put_u64(v);
        }
        w.put_usize(self.hists.len());
        for (name, h) in &self.hists {
            w.put_str(name);
            h.snapshot(w);
        }
        w.put_usize(self.ring.len());
        for agg in &self.ring {
            agg.snapshot(w);
        }
    }
}

impl Restore for TimeSeries {
    fn restore(r: &mut SnapReader<'_>) -> Result<TimeSeries, RestoreError> {
        let width = r.get_duration()?;
        if width.is_zero() {
            return Err(malformed("time series window width is zero"));
        }
        let retain = r.get_usize()?;
        if retain == 0 {
            return Err(malformed("time series retains zero windows"));
        }
        let open = r.get_u64()?;
        let rolled = r.get_u64()?;
        let n = r.get_usize()?;
        let mut counters = BTreeMap::new();
        for _ in 0..n {
            let name = r.get_str()?;
            let c = WinCounter {
                cur: r.get_u64()?,
                total: r.get_u64()?,
                evicted: r.get_u64()?,
            };
            if counters.insert(name.clone(), c).is_some() {
                return Err(malformed(format!("duplicate telemetry counter `{name}`")));
            }
        }
        let n = r.get_usize()?;
        let mut gauges = BTreeMap::new();
        for _ in 0..n {
            let name = r.get_str()?;
            let v = r.get_u64()?;
            if gauges.insert(name.clone(), v).is_some() {
                return Err(malformed(format!("duplicate telemetry gauge `{name}`")));
            }
        }
        let n = r.get_usize()?;
        let mut hists = BTreeMap::new();
        for _ in 0..n {
            let name = r.get_str()?;
            let h = Histogram::restore(r)?;
            if hists.insert(name.clone(), h).is_some() {
                return Err(malformed(format!("duplicate telemetry histogram `{name}`")));
            }
        }
        let n = r.get_usize()?;
        if n > retain {
            return Err(malformed(format!(
                "ring holds {n} windows, retain is {retain}"
            )));
        }
        let mut ring = VecDeque::with_capacity(retain);
        let mut last: Option<u64> = None;
        for _ in 0..n {
            let agg = WindowAgg::restore(r)?;
            if agg.index >= open {
                return Err(malformed(format!(
                    "ring window {} not before open window {open}",
                    agg.index
                )));
            }
            if let Some(prev) = last {
                if agg.index <= prev {
                    return Err(malformed("ring windows out of order"));
                }
            }
            last = Some(agg.index);
            ring.push_back(agg);
        }
        Ok(TimeSeries {
            width,
            retain,
            open,
            rolled,
            counters,
            gauges,
            hists,
            ring,
        })
    }
}

/// Which anomaly classes latch a flight-recorder trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerPolicy {
    /// A closed window whose latency p99 exceeds the SLO deadline.
    pub slo_breach: bool,
    /// A closed window in which admission shed requests on a full queue.
    pub queue_saturation: bool,
    /// A CheckPlane violation observed since the last window.
    pub check_violation: bool,
    /// A resilience-layer domain quarantine since the last window.
    pub quarantine: bool,
}

impl Default for TriggerPolicy {
    /// All trigger classes armed.
    fn default() -> TriggerPolicy {
        TriggerPolicy {
            slo_breach: true,
            queue_saturation: true,
            check_violation: true,
            quarantine: true,
        }
    }
}

impl TriggerPolicy {
    /// A policy with every trigger class disarmed.
    pub fn none() -> TriggerPolicy {
        TriggerPolicy {
            slo_breach: false,
            queue_saturation: false,
            check_violation: false,
            quarantine: false,
        }
    }
}

/// An anomaly class that can fire the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Window latency p99 exceeded the deadline.
    SloBreach,
    /// Admission shed on a saturated queue this window.
    QueueSaturation,
    /// CheckPlane recorded a violation.
    CheckViolation,
    /// A resilience domain was quarantined.
    Quarantine,
}

impl TriggerKind {
    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::SloBreach => "slo_breach",
            TriggerKind::QueueSaturation => "queue_saturation",
            TriggerKind::CheckViolation => "check_violation",
            TriggerKind::Quarantine => "quarantine",
        }
    }

    fn armed_in(self, p: &TriggerPolicy) -> bool {
        match self {
            TriggerKind::SloBreach => p.slo_breach,
            TriggerKind::QueueSaturation => p.queue_saturation,
            TriggerKind::CheckViolation => p.check_violation,
            TriggerKind::Quarantine => p.quarantine,
        }
    }
}

/// One event in the flight ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulated time of the event.
    pub time: Time,
    /// Short stable category (`"exemplar"`, `"window"`, ...).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// A latched trigger: when, which window, why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerFire {
    /// Simulated time the trigger fired.
    pub time: Time,
    /// Index of the window that tripped it.
    pub window: u64,
    /// [`TriggerKind::name`] of the cause.
    pub reason: String,
    /// Human-readable detail.
    pub detail: String,
}

struct FlightInner {
    cap: usize,
    policy: TriggerPolicy,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
    triggers: Vec<TriggerFire>,
}

/// An always-on bounded ring of recent events plus latched triggers.
///
/// The disabled recorder is a single `Option` branch per call — no
/// allocation, and detail closures are never invoked. Arming allocates
/// the ring once; a full ring drops its oldest event (counted in
/// `dropped`) so memory stays fixed.
pub struct FlightRecorder {
    inner: Option<Box<FlightInner>>,
}

impl FlightRecorder {
    /// The no-op recorder: every call is one branch.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// Arms a recorder with a ring of `cap` events and the given
    /// trigger policy.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn armed(cap: usize, policy: TriggerPolicy) -> FlightRecorder {
        assert!(cap > 0, "flight ring capacity must be non-zero");
        FlightRecorder {
            inner: Some(Box::new(FlightInner {
                cap,
                policy,
                ring: VecDeque::with_capacity(cap),
                dropped: 0,
                triggers: Vec::new(),
            })),
        }
    }

    /// True when the recorder is armed.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an event. Disabled: one branch, `detail` never runs.
    #[inline]
    pub fn note(&mut self, time: Time, kind: &str, detail: impl FnOnce() -> String) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        if inner.ring.len() == inner.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(FlightEvent {
            time,
            kind: kind.to_owned(),
            detail: detail(),
        });
    }

    /// Latches a trigger if `kind` is armed in the policy. Returns
    /// whether it fired. Disabled: one branch, `detail` never runs.
    #[inline]
    pub fn trigger(
        &mut self,
        time: Time,
        window: u64,
        kind: TriggerKind,
        detail: impl FnOnce() -> String,
    ) -> bool {
        let Some(inner) = self.inner.as_deref_mut() else {
            return false;
        };
        if !kind.armed_in(&inner.policy) {
            return false;
        }
        inner.triggers.push(TriggerFire {
            time,
            window,
            reason: kind.name().to_owned(),
            detail: detail(),
        });
        true
    }

    /// True when at least one trigger has latched.
    pub fn fired(&self) -> bool {
        self.inner
            .as_deref()
            .map(|i| !i.triggers.is_empty())
            .unwrap_or(false)
    }

    /// The earliest latched trigger, if any.
    pub fn first_trigger(&self) -> Option<&TriggerFire> {
        self.inner.as_deref().and_then(|i| i.triggers.first())
    }

    /// All latched triggers, in firing order.
    pub fn triggers(&self) -> &[TriggerFire] {
        self.inner
            .as_deref()
            .map(|i| i.triggers.as_slice())
            .unwrap_or(&[])
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.inner.iter().flat_map(|i| i.ring.iter())
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_deref().map(|i| i.dropped).unwrap_or(0)
    }

    /// Renders the recorder as canonical JSON: arming state, drop
    /// count, the event ring oldest-first, and latched triggers in
    /// firing order.
    pub fn to_json(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return "{\"armed\":false}".to_owned();
        };
        let mut out = String::with_capacity(64 + inner.ring.len() * 96);
        out.push_str("{\"armed\":true,\"cap\":");
        out.push_str(&inner.cap.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&inner.dropped.to_string());
        out.push_str(",\"events\":[");
        for (i, ev) in inner.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"t_ns\":");
            out.push_str(&ev.time.as_ns().to_string());
            out.push_str(",\"kind\":");
            json::escape(&mut out, &ev.kind);
            out.push_str(",\"detail\":");
            json::escape(&mut out, &ev.detail);
            out.push('}');
        }
        out.push_str("],\"triggers\":[");
        for (i, t) in inner.triggers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"t_ns\":");
            out.push_str(&t.time.as_ns().to_string());
            out.push_str(",\"window\":");
            out.push_str(&t.window.to_string());
            out.push_str(",\"reason\":");
            json::escape(&mut out, &t.reason);
            out.push_str(",\"detail\":");
            json::escape(&mut out, &t.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.as_deref() {
            None => f.write_str("FlightRecorder(disabled)"),
            Some(i) => write!(
                f,
                "FlightRecorder(armed, {} events, {} triggers)",
                i.ring.len(),
                i.triggers.len()
            ),
        }
    }
}

impl Clone for FlightRecorder {
    fn clone(&self) -> FlightRecorder {
        FlightRecorder {
            inner: self.inner.as_deref().map(|i| {
                Box::new(FlightInner {
                    cap: i.cap,
                    policy: i.policy,
                    ring: i.ring.clone(),
                    dropped: i.dropped,
                    triggers: i.triggers.clone(),
                })
            }),
        }
    }
}

impl PartialEq for FlightRecorder {
    fn eq(&self, other: &FlightRecorder) -> bool {
        self.to_json() == other.to_json()
    }
}

impl Snapshot for TriggerPolicy {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_bool(self.slo_breach);
        w.put_bool(self.queue_saturation);
        w.put_bool(self.check_violation);
        w.put_bool(self.quarantine);
    }
}

impl Restore for TriggerPolicy {
    fn restore(r: &mut SnapReader<'_>) -> Result<TriggerPolicy, RestoreError> {
        Ok(TriggerPolicy {
            slo_breach: r.get_bool()?,
            queue_saturation: r.get_bool()?,
            check_violation: r.get_bool()?,
            quarantine: r.get_bool()?,
        })
    }
}

impl Snapshot for FlightRecorder {
    fn snapshot(&self, w: &mut SnapWriter) {
        match self.inner.as_deref() {
            None => w.put_bool(false),
            Some(i) => {
                w.put_bool(true);
                w.put_usize(i.cap);
                i.policy.snapshot(w);
                w.put_u64(i.dropped);
                w.put_usize(i.ring.len());
                for ev in &i.ring {
                    w.put_time(ev.time);
                    w.put_str(&ev.kind);
                    w.put_str(&ev.detail);
                }
                w.put_usize(i.triggers.len());
                for t in &i.triggers {
                    w.put_time(t.time);
                    w.put_u64(t.window);
                    w.put_str(&t.reason);
                    w.put_str(&t.detail);
                }
            }
        }
    }
}

impl Restore for FlightRecorder {
    fn restore(r: &mut SnapReader<'_>) -> Result<FlightRecorder, RestoreError> {
        if !r.get_bool()? {
            return Ok(FlightRecorder::disabled());
        }
        let cap = r.get_usize()?;
        if cap == 0 {
            return Err(malformed("flight ring capacity is zero"));
        }
        let policy = TriggerPolicy::restore(r)?;
        let dropped = r.get_u64()?;
        let n = r.get_usize()?;
        if n > cap {
            return Err(malformed(format!(
                "flight ring holds {n} events, cap is {cap}"
            )));
        }
        let mut ring = VecDeque::with_capacity(cap);
        for _ in 0..n {
            ring.push_back(FlightEvent {
                time: r.get_time()?,
                kind: r.get_str()?,
                detail: r.get_str()?,
            });
        }
        let n = r.get_usize()?;
        let mut triggers = Vec::with_capacity(n);
        for _ in 0..n {
            triggers.push(TriggerFire {
                time: r.get_time()?,
                window: r.get_u64()?,
                reason: r.get_str()?,
                detail: r.get_str()?,
            });
        }
        Ok(FlightRecorder {
            inner: Some(Box::new(FlightInner {
                cap,
                policy,
                ring,
                dropped,
                triggers,
            })),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Time {
        Time::ZERO + Duration::from_us(n)
    }

    #[test]
    fn windows_roll_on_fixed_boundaries() {
        let mut ts = TimeSeries::new(Duration::from_us(10), 16);
        ts.incr("ev", 2);
        ts.advance(us(9)); // still inside window 0
        assert_eq!(ts.rolled(), 0);
        ts.advance(us(10)); // window 0 closes exactly at its end
        assert_eq!(ts.rolled(), 1);
        ts.incr("ev", 5);
        ts.advance(us(35)); // windows 1 and 2 close
        assert_eq!(ts.rolled(), 3);
        ts.finish(us(35)); // partial window 3 closes
        assert_eq!(ts.rolled(), 4);
        let w: Vec<_> = ts.windows().collect();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].counter("ev"), 2);
        assert_eq!(w[1].counter("ev"), 5);
        assert_eq!(w[2].counter("ev"), 0);
        assert_eq!(ts.lifetime("ev"), 7);
    }

    #[test]
    fn gauges_persist_and_hists_reset_per_window() {
        let mut ts = TimeSeries::new(Duration::from_us(10), 16);
        ts.set_gauge("queue", 3);
        ts.record("lat", 100);
        ts.advance(us(10));
        ts.record("lat", 9_000);
        ts.finish(us(15));
        let w: Vec<_> = ts.windows().collect();
        assert_eq!(w[0].gauge("queue"), 3);
        assert_eq!(w[1].gauge("queue"), 3, "gauge level persists");
        assert_eq!(w[0].hist("lat").unwrap().count(), 1);
        assert_eq!(w[1].hist("lat").unwrap().count(), 1);
        assert_eq!(w[1].hist("lat").unwrap().max(), 9_000);
    }

    #[test]
    fn conservation_holds_through_ring_eviction() {
        let mut ts = TimeSeries::new(Duration::from_us(1), 4);
        for i in 0..12u64 {
            ts.incr("ev", i + 1);
            ts.advance(us(i + 1));
        }
        assert_eq!(ts.windows().count(), 4, "ring stays bounded");
        let mut cp = CheckPlane::enabled(1);
        ts.check_conservation(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(ts.lifetime("ev"), (1..=12).sum::<u64>());
    }

    #[test]
    fn merge_equals_recording_into_one_series() {
        let mut a = TimeSeries::new(Duration::from_us(10), 8);
        let mut b = TimeSeries::new(Duration::from_us(10), 8);
        let mut whole = TimeSeries::new(Duration::from_us(10), 8);
        for i in 0..6u64 {
            a.incr("ev", i);
            b.incr("ev", 10 * i);
            whole.incr("ev", 11 * i);
            a.record("lat", 100 + i);
            b.record("lat", 5_000 + i);
            whole.record("lat", 100 + i);
            whole.record("lat", 5_000 + i);
            a.advance(us((i + 1) * 10));
            b.advance(us((i + 1) * 10));
            whole.advance(us((i + 1) * 10));
        }
        a.finish(us(60));
        b.finish(us(60));
        whole.finish(us(60));
        a.merge(&b);
        assert_eq!(a.to_json(), whole.to_json());
        let mut cp = CheckPlane::enabled(1);
        a.check_conservation(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
    }

    #[test]
    fn json_is_well_formed_and_reruns_identically() {
        let mut ts = TimeSeries::new(Duration::from_us(10), 8);
        ts.incr("req", 3);
        ts.set_gauge("queue", 2);
        ts.record("lat", 150);
        ts.finish(us(25));
        let text = ts.to_json();
        let doc = json::parse(&text).expect("series JSON parses");
        assert_eq!(doc.get("width_ns").unwrap().as_f64(), Some(10_000.0));
        let windows = doc.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 3);
        assert_eq!(
            windows[0]
                .get("counters")
                .unwrap()
                .get("req")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        assert_eq!(ts.to_json(), text, "export is stable");
    }

    #[test]
    fn series_snapshot_round_trips() {
        let mut ts = TimeSeries::new(Duration::from_us(2), 3);
        for i in 0..8u64 {
            ts.incr("ev", i);
            ts.set_gauge("g", 100 - i);
            ts.record("lat", 1_000 * (i + 1));
            ts.advance(us(2 * (i + 1)));
        }
        let mut w = SnapWriter::new();
        ts.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = TimeSeries::restore(&mut r).expect("restore");
        assert!(r.is_exhausted());
        assert_eq!(back, ts);
        assert_eq!(back.to_json(), ts.to_json());
        let mut w2 = SnapWriter::new();
        back.snapshot(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-serialize is byte-identical");
    }

    #[test]
    fn disabled_recorder_is_inert_and_closures_never_run() {
        let mut fr = FlightRecorder::disabled();
        assert!(!fr.is_armed());
        fr.note(us(1), "x", || {
            panic!("detail must not be built when disabled")
        });
        let fired = fr.trigger(us(1), 0, TriggerKind::SloBreach, || {
            panic!("detail must not be built when disabled")
        });
        assert!(!fired);
        assert!(!fr.fired());
        assert_eq!(fr.events().count(), 0);
        assert_eq!(fr.to_json(), "{\"armed\":false}");
    }

    #[test]
    fn armed_ring_is_bounded_and_counts_drops() {
        let mut fr = FlightRecorder::armed(3, TriggerPolicy::default());
        for i in 0..5u64 {
            fr.note(us(i), "tick", || format!("event {i}"));
        }
        assert_eq!(fr.events().count(), 3);
        assert_eq!(fr.dropped(), 2);
        let kinds: Vec<u64> = fr.events().map(|e| e.time.as_ns() / 1_000).collect();
        assert_eq!(kinds, vec![2, 3, 4], "oldest events dropped first");
    }

    #[test]
    fn trigger_policy_gates_firing() {
        let mut policy = TriggerPolicy::none();
        policy.quarantine = true;
        let mut fr = FlightRecorder::armed(8, policy);
        assert!(!fr.trigger(us(1), 0, TriggerKind::SloBreach, || "p99".into()));
        assert!(fr.trigger(us(2), 1, TriggerKind::Quarantine, || "domain 3".into()));
        assert!(fr.fired());
        let t = fr.first_trigger().unwrap();
        assert_eq!(t.reason, "quarantine");
        assert_eq!(t.window, 1);
    }

    #[test]
    fn recorder_snapshot_round_trips() {
        let mut fr = FlightRecorder::armed(4, TriggerPolicy::default());
        for i in 0..6u64 {
            fr.note(us(i), "tick", || format!("event {i}"));
        }
        fr.trigger(us(9), 2, TriggerKind::CheckViolation, || "boom".into());
        let mut w = SnapWriter::new();
        fr.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = FlightRecorder::restore(&mut r).expect("restore");
        assert!(r.is_exhausted());
        assert_eq!(back.to_json(), fr.to_json());
        assert_eq!(back.dropped(), 2);

        let disabled = FlightRecorder::disabled();
        let mut w = SnapWriter::new();
        disabled.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = FlightRecorder::restore(&mut r).expect("restore");
        assert!(!back.is_armed());
    }

    #[test]
    fn flight_json_parses() {
        let mut fr = FlightRecorder::armed(4, TriggerPolicy::default());
        fr.note(us(1), "exemplar", || "req 7 \"quoted\"".into());
        fr.trigger(us(2), 0, TriggerKind::SloBreach, || {
            "p99 300us > 250us".into()
        });
        let doc = json::parse(&fr.to_json()).expect("flight JSON parses");
        assert_eq!(
            doc.get("events").unwrap().as_arr().unwrap()[0]
                .get("kind")
                .unwrap()
                .as_str(),
            Some("exemplar")
        );
        assert_eq!(
            doc.get("triggers").unwrap().as_arr().unwrap()[0]
                .get("reason")
                .unwrap()
                .as_str(),
            Some("slo_breach")
        );
    }
}
