//! SnapPlane — versioned, deterministic snapshot/restore codec.
//!
//! Exascale machines see mean-time-between-failures shrink below job
//! runtimes, so checkpoint/restart is table stakes alongside the local
//! recovery the FaultPlane models. This module is the dependency-free
//! binary codec every layer's `Snapshot`/`Restore` implementation builds
//! on: a length-prefixed, checksummed section container plus typed
//! primitive readers/writers, with **no external crates** (per the
//! workspace rule) and no floating-point round-tripping (floats travel
//! as raw IEEE-754 bits).
//!
//! # File layout
//!
//! ```text
//! magic      8 bytes   "ECOSNAP\x01"
//! version    u32 LE    SNAP_VERSION
//! count      u32 LE    number of sections
//! table      count x [ name_len u32 | name UTF-8 | offset u64 | len u64 | fnv1a64 u64 ]
//! payloads   concatenated section bytes (offsets are absolute file offsets)
//! ```
//!
//! Every integer is little-endian fixed-width. Section payloads are
//! integrity-checked with FNV-1a-64 at parse time, so a corrupted
//! snapshot is refused *before* any state is touched — restores are
//! all-or-nothing, never partially applied.
//!
//! # Safe points
//!
//! A snapshot is only meaningful at a *safe point*: a moment where no
//! layer holds hidden in-flight state outside the serialized structures.
//! For the serving stack that is a window boundary of the cell loop
//! (`CellSim::run` pauses between instants); for the sharded engine it is
//! a window barrier (mailboxes drained into the serialized queues). The
//! restore path rebuilds structural state from the embedded config
//! (builders are deterministic) and overlays the mutable state from the
//! checksummed sections, so *run-to-T, snapshot, restore, run-to-end*
//! produces byte-identical exports to an uninterrupted run.

use core::fmt;

use crate::time::{Duration, Time};

/// Magic prefix of every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"ECOSNAP\x01";

/// Current codec version. Snapshots written by a *newer* codec are
/// refused with [`RestoreError::FutureVersion`]; older versions would be
/// migrated here (none exist yet).
pub const SNAP_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-64 over `bytes` — the section checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a snapshot could not be restored. Typed so tests can pin the
/// refusal mode, `Display` so the CLI can print it. A restore that
/// returns any of these has touched **no** state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The file does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The file was written by a newer codec than this build supports.
    FutureVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The file ends before the advertised data.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A section's payload does not hash to its table checksum.
    BadChecksum {
        /// Section name.
        section: String,
        /// Checksum recorded in the table.
        want: u64,
        /// Checksum of the payload as found.
        got: u64,
    },
    /// A section the restore needs is absent.
    MissingSection {
        /// Section name.
        section: String,
    },
    /// A section decoded to structurally invalid state.
    Malformed {
        /// What failed to decode.
        context: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "not a snapshot: bad magic"),
            RestoreError::FutureVersion { found, supported } => write!(
                f,
                "snapshot version {found} is newer than supported version {supported}"
            ),
            RestoreError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            RestoreError::BadChecksum { section, want, got } => write!(
                f,
                "section `{section}` checksum mismatch: want {want:#018x}, got {got:#018x}"
            ),
            RestoreError::MissingSection { section } => {
                write!(f, "snapshot has no `{section}` section")
            }
            RestoreError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Shorthand for a [`RestoreError::Malformed`] with a formatted context.
pub fn malformed(context: impl Into<String>) -> RestoreError {
    RestoreError::Malformed {
        context: context.into(),
    }
}

/// A type that can serialize its mutable state into a [`SnapWriter`].
///
/// Implementations must be deterministic (maps in sorted key order,
/// floats as raw bits) so the same state always yields the same bytes.
pub trait Snapshot {
    /// Appends this value's state to `w`.
    fn snapshot(&self, w: &mut SnapWriter);
}

/// A value type that can be rebuilt from a [`SnapReader`] stream.
///
/// Structural state that is a pure function of the run configuration
/// (topologies, kernel libraries, tracers) is *not* restored this way —
/// it is rebuilt by the deterministic builders, and only mutable state
/// is overlaid. Types whose fields are private to another crate expose
/// inherent `restore_state` methods instead.
pub trait Restore: Sized {
    /// Reads one value off `r`.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] when the stream is truncated or malformed.
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError>;
}

/// Append-only typed writer over a byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits (exact round-trip,
    /// including NaN payloads and signed zeros/infinities).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Appends a [`Time`] as picoseconds.
    pub fn put_time(&mut self, t: Time) {
        self.put_u64(t.as_ps());
    }

    /// Appends a [`Duration`] as picoseconds.
    pub fn put_duration(&mut self, d: Duration) {
        self.put_u64(d.as_ps());
    }

    /// Appends an `Option<Time>` (presence byte + value).
    pub fn put_opt_time(&mut self, t: Option<Time>) {
        self.put_bool(t.is_some());
        if let Some(t) = t {
            self.put_time(t);
        }
    }
}

/// Cursor-based typed reader over snapshot bytes. Every getter returns
/// [`RestoreError::Truncated`] past the end rather than panicking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor is at the end.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], RestoreError> {
        if self.remaining() < n {
            return Err(RestoreError::Truncated {
                context: context.to_string(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, RestoreError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, RestoreError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, RestoreError> {
        let b = self.take(16, "u128")?;
        Ok(u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, RestoreError> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` written with [`SnapWriter::put_usize`].
    pub fn get_usize(&mut self) -> Result<usize, RestoreError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| malformed(format!("usize {v} out of range")))
    }

    /// Reads an `f64` from raw bits.
    pub fn get_f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, RestoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, RestoreError> {
        let len = self.get_u32()? as usize;
        let b = self.take(len, "str payload")?;
        String::from_utf8(b.to_vec()).map_err(|_| malformed("non-UTF-8 string"))
    }

    /// Reads a length-prefixed raw byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, RestoreError> {
        let len = self.get_usize()?;
        Ok(self.take(len, "byte payload")?.to_vec())
    }

    /// Reads a [`Time`].
    pub fn get_time(&mut self) -> Result<Time, RestoreError> {
        Ok(Time::from_ps(self.get_u64()?))
    }

    /// Reads a [`Duration`].
    pub fn get_duration(&mut self) -> Result<Duration, RestoreError> {
        Ok(Duration::from_ps(self.get_u64()?))
    }

    /// Reads an `Option<Time>`.
    pub fn get_opt_time(&mut self) -> Result<Option<Time>, RestoreError> {
        Ok(if self.get_bool()? {
            Some(self.get_time()?)
        } else {
            None
        })
    }
}

/// Builder assembling named, checksummed sections into one snapshot file.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> SnapshotBuilder {
        SnapshotBuilder::default()
    }

    /// Adds a section; `fill` writes its payload. Section names must be
    /// unique within one snapshot.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate section name (snapshot layout is a
    /// programming contract, not input data).
    pub fn section(&mut self, name: &str, fill: impl FnOnce(&mut SnapWriter)) -> &mut Self {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section `{name}`"
        );
        let mut w = SnapWriter::new();
        fill(&mut w);
        self.sections.push((name.to_string(), w.into_bytes()));
        self
    }

    /// Serializes magic, version, section table and payloads.
    pub fn finish(&self) -> Vec<u8> {
        let mut table_len = 8 + 4 + 4;
        for (name, _) in &self.sections {
            table_len += 4 + name.len() + 8 + 8 + 8;
        }
        let mut out = Vec::with_capacity(
            table_len + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = table_len as u64;
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// One row of a parsed snapshot's section table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name.
    pub name: String,
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a-64 checksum of the payload.
    pub checksum: u64,
}

/// A parsed, integrity-verified snapshot. Parsing validates the magic,
/// the version, the table shape and **every** section checksum up front,
/// so a handed-out [`SnapshotFile`] is internally consistent and restores
/// can never half-apply a corrupted file.
#[derive(Debug)]
pub struct SnapshotFile<'a> {
    version: u32,
    sections: Vec<(SectionInfo, &'a [u8])>,
}

impl<'a> SnapshotFile<'a> {
    /// Parses and verifies `bytes`.
    ///
    /// # Errors
    ///
    /// [`RestoreError::BadMagic`], [`RestoreError::FutureVersion`],
    /// [`RestoreError::Truncated`], [`RestoreError::BadChecksum`] or
    /// [`RestoreError::Malformed`] — in that precedence order.
    pub fn parse(bytes: &'a [u8]) -> Result<SnapshotFile<'a>, RestoreError> {
        if bytes.len() < 8 || bytes[..8] != SNAP_MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let mut r = SnapReader::new(&bytes[8..]);
        let version = r.get_u32().map_err(|_| RestoreError::Truncated {
            context: "header version".to_string(),
        })?;
        if version > SNAP_VERSION {
            return Err(RestoreError::FutureVersion {
                found: version,
                supported: SNAP_VERSION,
            });
        }
        let count = r.get_u32()? as usize;
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let name = r
                .get_str()
                .map_err(|e| table_err(e, &format!("section {i} name")))?;
            let offset = r
                .get_u64()
                .map_err(|e| table_err(e, &format!("section `{name}` offset")))?;
            let len = r
                .get_u64()
                .map_err(|e| table_err(e, &format!("section `{name}` length")))?;
            let checksum = r
                .get_u64()
                .map_err(|e| table_err(e, &format!("section `{name}` checksum")))?;
            let start = usize::try_from(offset)
                .map_err(|_| malformed(format!("section `{name}` offset {offset}")))?;
            let end = start
                .checked_add(
                    usize::try_from(len)
                        .map_err(|_| malformed(format!("section `{name}` length {len}")))?,
                )
                .ok_or_else(|| malformed(format!("section `{name}` extent overflows")))?;
            if end > bytes.len() {
                return Err(RestoreError::Truncated {
                    context: format!("section `{name}` payload"),
                });
            }
            sections.push((
                SectionInfo {
                    name,
                    offset,
                    len,
                    checksum,
                },
                &bytes[start..end],
            ));
        }
        for (info, payload) in &sections {
            let got = fnv1a64(payload);
            if got != info.checksum {
                return Err(RestoreError::BadChecksum {
                    section: info.name.clone(),
                    want: info.checksum,
                    got,
                });
            }
        }
        Ok(SnapshotFile { version, sections })
    }

    /// Codec version the file was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Section table rows in file order.
    pub fn sections(&self) -> impl Iterator<Item = &SectionInfo> {
        self.sections.iter().map(|(info, _)| info)
    }

    /// A reader over the named section's (already-verified) payload.
    ///
    /// # Errors
    ///
    /// [`RestoreError::MissingSection`] when absent.
    pub fn section(&self, name: &str) -> Result<SnapReader<'a>, RestoreError> {
        self.sections
            .iter()
            .find(|(info, _)| info.name == name)
            .map(|(_, payload)| SnapReader::new(payload))
            .ok_or_else(|| RestoreError::MissingSection {
                section: name.to_string(),
            })
    }

    /// The header as deterministic JSON — version plus the full section
    /// table (name, offset, length, checksum) — pinned by the
    /// `snapshot_header.schema` golden test.
    pub fn header_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"magic\":");
        crate::json::escape(&mut s, "ECOSNAP");
        s.push_str(&format!(",\"version\":{},\"sections\":[", self.version));
        for (i, (info, _)) in self.sections.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            crate::json::escape(&mut s, &info.name);
            s.push_str(&format!(
                ",\"offset\":{},\"len\":{},\"checksum\":\"{:016x}\"}}",
                info.offset, info.len, info.checksum
            ));
        }
        s.push_str("]}");
        s
    }
}

fn table_err(e: RestoreError, context: &str) -> RestoreError {
    match e {
        RestoreError::Truncated { .. } => RestoreError::Truncated {
            context: format!("table ({context})"),
        },
        other => other,
    }
}

// ----------------------------------------------------------------------
// Snapshot/Restore for the substrate value types
// ----------------------------------------------------------------------

impl Snapshot for Time {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_time(*self);
    }
}

impl Restore for Time {
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.get_time()
    }
}

impl Snapshot for Duration {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_duration(*self);
    }
}

impl Restore for Duration {
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.get_duration()
    }
}

impl Snapshot for u64 {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
}

impl Restore for u64 {
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.get_u64()
    }
}

impl Snapshot for u32 {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u32(*self);
    }
}

impl Restore for u32 {
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.get_u32()
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for item in self {
            item.snapshot(w);
        }
    }
}

impl<T: Restore> Restore for Vec<T> {
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let len = r.get_usize()?;
        // Guard against a corrupted length asking for an absurd
        // allocation; every element needs at least one byte.
        if len > r.remaining() {
            return Err(malformed(format!(
                "vec length {len} exceeds remaining {} bytes",
                r.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_u128(1 << 100);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::INFINITY);
        w.put_bool(true);
        w.put_str("hello ✓");
        w.put_bytes(&[1, 2, 3]);
        w.put_time(Time::from_ns(5));
        w.put_duration(Duration::from_us(9));
        w.put_opt_time(None);
        w.put_opt_time(Some(Time::from_ps(1)));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_u128().unwrap(), 1 << 100);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "hello ✓");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_time().unwrap(), Time::from_ns(5));
        assert_eq!(r.get_duration().unwrap(), Duration::from_us(9));
        assert_eq!(r.get_opt_time().unwrap(), None);
        assert_eq!(r.get_opt_time().unwrap(), Some(Time::from_ps(1)));
        assert!(r.is_exhausted());
    }

    #[test]
    fn reads_past_end_are_truncated_not_panics() {
        let mut r = SnapReader::new(&[1, 2]);
        assert!(matches!(r.get_u64(), Err(RestoreError::Truncated { .. })));
        // failed read consumes nothing
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8().unwrap(), 1);
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_malformed() {
        let mut r = SnapReader::new(&[7]);
        assert!(matches!(r.get_bool(), Err(RestoreError::Malformed { .. })));
        let mut w = SnapWriter::new();
        w.put_u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(RestoreError::Malformed { .. })));
    }

    #[test]
    fn container_round_trips_and_verifies() {
        let mut b = SnapshotBuilder::new();
        b.section("alpha", |w| w.put_u64(11));
        b.section("beta", |w| {
            w.put_str("two");
            w.put_f64(2.5);
        });
        let bytes = b.finish();
        let file = SnapshotFile::parse(&bytes).expect("parses");
        assert_eq!(file.version(), SNAP_VERSION);
        let names: Vec<&str> = file.sections().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        let mut r = file.section("alpha").unwrap();
        assert_eq!(r.get_u64().unwrap(), 11);
        let mut r = file.section("beta").unwrap();
        assert_eq!(r.get_str().unwrap(), "two");
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert!(matches!(
            file.section("gamma"),
            Err(RestoreError::MissingSection { .. })
        ));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let bytes = SnapshotBuilder::new().finish();
        let file = SnapshotFile::parse(&bytes).expect("parses");
        assert_eq!(file.sections().count(), 0);
    }

    #[test]
    fn bad_magic_is_refused() {
        assert_eq!(
            SnapshotFile::parse(b"").unwrap_err(),
            RestoreError::BadMagic
        );
        assert_eq!(
            SnapshotFile::parse(b"NOTSNAP\x01rest").unwrap_err(),
            RestoreError::BadMagic
        );
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = SnapshotBuilder::new().finish();
        bytes[8..12].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
        assert_eq!(
            SnapshotFile::parse(&bytes).unwrap_err(),
            RestoreError::FutureVersion {
                found: SNAP_VERSION + 1,
                supported: SNAP_VERSION
            }
        );
    }

    #[test]
    fn every_payload_bit_flip_is_caught() {
        let mut b = SnapshotBuilder::new();
        b.section("s", |w| {
            w.put_u64(0x0123_4567_89AB_CDEF);
            w.put_str("payload");
        });
        let bytes = b.finish();
        let file = SnapshotFile::parse(&bytes).expect("pristine parses");
        let info = file.sections().next().unwrap().clone();
        let (start, end) = (info.offset as usize, (info.offset + info.len) as usize);
        for i in start..end {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                match SnapshotFile::parse(&corrupt) {
                    Err(RestoreError::BadChecksum { section, .. }) => assert_eq!(section, "s"),
                    other => panic!("byte {i} bit {bit}: expected BadChecksum, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn truncated_file_is_refused() {
        let mut b = SnapshotBuilder::new();
        b.section("s", |w| w.put_bytes(&[9; 64]));
        let bytes = b.finish();
        // every strict prefix must fail loudly (Truncated or BadMagic)
        for cut in 0..bytes.len() {
            let err = SnapshotFile::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, RestoreError::Truncated { .. } | RestoreError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn header_json_is_deterministic_and_lists_sections() {
        let mut b = SnapshotBuilder::new();
        b.section("one", |w| w.put_u64(1));
        b.section("two", |w| w.put_u64(2));
        let bytes = b.finish();
        let file = SnapshotFile::parse(&bytes).expect("parses");
        let j = file.header_json();
        assert!(j.contains("\"magic\":\"ECOSNAP\""), "{j}");
        assert!(j.contains("\"version\":1"), "{j}");
        assert!(j.contains("\"name\":\"one\""), "{j}");
        assert!(j.contains("\"name\":\"two\""), "{j}");
        assert_eq!(j, SnapshotFile::parse(&bytes).unwrap().header_json());
    }

    #[test]
    fn vec_restore_rejects_absurd_lengths() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let got: Result<Vec<u64>, _> = Vec::restore(&mut r);
        assert!(matches!(got, Err(RestoreError::Malformed { .. })));
    }

    #[test]
    fn display_messages_name_the_failure() {
        let e = RestoreError::BadChecksum {
            section: "serve".into(),
            want: 1,
            got: 2,
        };
        assert!(e.to_string().contains("serve"));
        let e = RestoreError::FutureVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = RestoreError::MissingSection {
            section: "cells".into(),
        };
        assert!(e.to_string().contains("cells"));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
