//! Sharded conservative-parallel discrete-event engine.
//!
//! The ECOSCALE scaling argument is hierarchical partitioning: Workers
//! grouped into clusters that communicate over UNIMEM/NoC links with
//! *known, bounded minimum latency*. That bound is exactly the lookahead a
//! conservative parallel DES needs, so the simulator can partition the
//! system by cluster into per-shard event queues and run them on real
//! threads without ever risking a causality violation.
//!
//! # Protocol
//!
//! [`ShardedEngine`] owns one [`TimingWheel`] per *cluster* (the model's
//! fixed partition unit — never per shard, so the event structure is
//! independent of how clusters are packed onto threads). Execution
//! proceeds in safe windows:
//!
//! 1. **Drain**: each shard moves messages from its mailboxes into the
//!    destination clusters' wheels and publishes the minimum pending
//!    timestamp over its clusters.
//! 2. **Window**: the leader computes `gmin = min(shard horizons)` and
//!    opens the window `[gmin, gmin + lookahead)`. If nothing is pending,
//!    the budget is exhausted, or `gmin` passed the horizon, the run stops
//!    (always post-drain, so mailboxes are empty at every stop).
//! 3. **Process**: every shard executes, for each owned cluster, all
//!    events with `t < gmin + lookahead`. Cross-cluster sends must carry a
//!    delay of at least `lookahead`, so they land at or after the window
//!    end and cannot be needed by any cluster still executing this window.
//!    Sends are staged into per-shard-pair mailboxes for the next drain.
//!
//! # Determinism
//!
//! Results are **byte-identical at any shard count** by construction:
//! every event carries a canonical key `(source cluster, per-cluster send
//! sequence)`, each cluster's wheel delivers in `(time, key)` order, the
//! window sequence depends only on global minima (not the layout), and
//! clusters interact exclusively through these keyed messages. Mailboxes
//! are transport only — arrival order through them never affects delivery
//! order. `ECOSCALE_SHARDS` (default 1) selects the shard count; shard 1
//! is the sequential engine, same code path minus the barriers.
//!
//! Shards are a *partitioning* choice, threads an *execution* choice: the
//! engine caps worker threads at the host's available parallelism and
//! assigns each worker a contiguous group of shards, so oversubscribing
//! `ECOSCALE_SHARDS` past the core count never melts into spin-barrier
//! contention (results are unchanged either way). [`ShardedEngine::with_threads`]
//! forces a specific worker count for tests.
//!
//! # Example
//!
//! ```
//! use ecoscale_sim::shard::{ClusterCtx, ClusterModel, ShardedEngine};
//! use ecoscale_sim::{Duration, Time};
//!
//! struct Echo {
//!     heard: u64,
//! }
//!
//! impl ClusterModel for Echo {
//!     type Event = u64;
//!     fn handle(&mut self, _now: Time, ev: u64, ctx: &mut ClusterCtx<'_, u64>) {
//!         self.heard += ev;
//!         if ev > 1 {
//!             // bounce the decremented token to the next cluster
//!             let dst = (ctx.cluster() + 1) % ctx.clusters();
//!             ctx.send(dst, ctx.lookahead(), ev - 1);
//!         }
//!     }
//! }
//!
//! let models = (0..4).map(|_| Echo { heard: 0 }).collect();
//! let mut engine = ShardedEngine::new(models, Duration::from_ns(90)).with_shards(2);
//! engine.schedule(0, Time::ZERO, 8);
//! engine.run();
//! let total: u64 = (0..4).map(|c| engine.model(c).heard).sum();
//! assert_eq!(total, 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::check::{invariant, CheckPlane};
use crate::engine::StopReason;
use crate::pool::RoundBarrier;
use crate::prof::{Phase, Profiler, ShardOccupancy};
use crate::snap::{malformed, Restore, RestoreError, SnapReader, SnapWriter, Snapshot};
use crate::telem::TimeSeries;
use crate::time::{Duration, Time};
use crate::wheel::TimingWheel;

/// Environment variable selecting the shard count (default: 1).
pub const SHARDS_ENV: &str = "ECOSCALE_SHARDS";

/// Bits of the canonical event key reserved for the per-cluster sequence
/// number; the source cluster index lives above them.
const SEQ_BITS: u32 = 48;
/// Maximum number of clusters an engine can address.
pub const MAX_CLUSTERS: usize = 1 << (64 - SEQ_BITS);

/// The configured shard count: `ECOSCALE_SHARDS` if set to a positive
/// integer, else 1 (sequential — the current behavior).
///
/// Read on every call so tests can toggle the variable between runs.
pub fn shard_count() -> usize {
    if let Ok(v) = std::env::var(SHARDS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    1
}

/// Packs the canonical event key: source cluster in the high bits, the
/// per-cluster send sequence below.
fn pack_key(src: usize, seq: u64) -> u64 {
    debug_assert!(src < MAX_CLUSTERS);
    debug_assert!(seq < 1 << SEQ_BITS);
    ((src as u64) << SEQ_BITS) | seq
}

/// A partitioned model: one instance per cluster, driven by cluster-local
/// events, interacting with other clusters only through [`ClusterCtx::send`].
pub trait ClusterModel: Send {
    /// The cluster-local event type.
    type Event: Send;

    /// Handles one event delivered at `now`. New local events and
    /// cross-cluster messages are issued through `ctx`.
    fn handle(&mut self, now: Time, event: Self::Event, ctx: &mut ClusterCtx<'_, Self::Event>);
}

/// The scheduling surface a [`ClusterModel`] sees while handling an event.
pub struct ClusterCtx<'a, E> {
    now: Time,
    cluster: usize,
    clusters: usize,
    lookahead: Duration,
    wheel: &'a mut TimingWheel<E>,
    seq: &'a mut u64,
    outbox: &'a mut Vec<OutMsg<E>>,
}

impl<E> ClusterCtx<'_, E> {
    /// The timestamp of the event being handled.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This cluster's index.
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// Total number of clusters in the engine.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// The engine's lookahead: the minimum legal cross-cluster delay.
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    fn next_key(&mut self) -> u64 {
        let key = pack_key(self.cluster, *self.seq);
        *self.seq += 1;
        key
    }

    /// Schedules a cluster-local event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before `now`.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        let key = self.next_key();
        self.wheel.schedule(at, key, event);
    }

    /// Schedules a cluster-local event at `now + delay`.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Sends `event` to cluster `dst`, arriving at `now + delay`.
    ///
    /// A send to this cluster itself is an ordinary local schedule (any
    /// delay). A cross-cluster send must respect the lookahead — that
    /// bound is what makes the safe-window protocol conservative.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range, or if `dst` differs from this
    /// cluster and `delay` is below the engine lookahead.
    pub fn send(&mut self, dst: usize, delay: Duration, event: E) {
        assert!(
            dst < self.clusters,
            "destination cluster {dst} out of range"
        );
        if dst == self.cluster {
            self.schedule_in(delay, event);
            return;
        }
        assert!(
            delay >= self.lookahead,
            "cross-cluster delay {delay} below lookahead {}",
            self.lookahead
        );
        let key = self.next_key();
        self.outbox.push(OutMsg {
            dst: dst as u32,
            at: self.now + delay,
            key,
            event,
        });
    }
}

/// A staged cross-cluster message.
struct OutMsg<E> {
    dst: u32,
    at: Time,
    key: u64,
    event: E,
}

struct ClusterState<M: ClusterModel> {
    model: M,
    wheel: TimingWheel<M::Event>,
    seq: u64,
    clock: Time,
    events: u64,
    outbox: Vec<OutMsg<M::Event>>,
}

/// One shard's clusters, tagged with their global cluster indices.
type ShardPart<M> = Vec<(usize, ClusterState<M>)>;

/// A worker's owned shards: `(shard index, that shard's clusters)`.
type WorkerShards<M> = Vec<(usize, ShardPart<M>)>;

/// A worker's return after a parallel run.
struct WorkerResult<M: ClusterModel> {
    part: ShardPart<M>,
    stats: WorkerStats,
    reason: StopReason,
    /// Leader only: the window-end sequence.
    windows: Vec<u64>,
    /// Leader only: the folded occupancy accumulator, when armed.
    occ: Option<ShardOccupancy>,
    /// Leader only: the per-safe-window telemetry series, when armed.
    series: Option<TimeSeries>,
    /// This worker's wall-clock phase timers (disabled unless armed).
    wall: Profiler,
}

/// Per-worker counters folded into the engine after a run.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    events: u64,
    sent: u64,
    delivered: u64,
}

/// Shared coordination state for one parallel run.
struct RunShared<E> {
    barrier: RoundBarrier,
    /// Per-shard minimum pending timestamp (ps; `u64::MAX` = idle).
    next_times: Vec<AtomicU64>,
    /// Safe-window end for the current round (ps, exclusive).
    window_end: AtomicU64,
    /// 0 = keep running, else `StopReason` code (1/2/3).
    stop: AtomicU64,
    /// Events processed in finished rounds (budget checks).
    total_events: AtomicU64,
    /// Cleared by the leader if a window end ever regresses.
    windows_monotone: AtomicBool,
    /// Per-shard-pair mailboxes, indexed `src_shard * shards + dst_shard`.
    mail: Vec<Mutex<Vec<OutMsg<E>>>>,
    /// Per-cluster event counts of the current window (empty unless
    /// occupancy is armed). Workers add during process; the leader swaps
    /// them out at the next decision — the barriers in between order the
    /// accesses, so `Relaxed` suffices.
    occ_counts: Vec<AtomicU64>,
}

/// The conservative-parallel engine: per-cluster wheels, safe-window
/// synchronization, deterministic keyed messaging. See the [module
/// docs](self) for the protocol and determinism argument.
pub struct ShardedEngine<M: ClusterModel> {
    clusters: Vec<ClusterState<M>>,
    lookahead: Duration,
    shards: usize,
    threads: Option<usize>,
    occ_widths: Option<Vec<usize>>,
    occupancy: Option<ShardOccupancy>,
    series_cfg: Option<(Duration, usize)>,
    series: Option<TimeSeries>,
    self_prof: bool,
    wall: Profiler,
    events_processed: u64,
    rounds: u64,
    messages_sent: u64,
    messages_delivered: u64,
    last_window_end: Time,
    windows_monotone: bool,
}

impl<M: ClusterModel> ShardedEngine<M> {
    /// Creates an engine over one model per cluster with the given
    /// lookahead, reading the shard count from `ECOSCALE_SHARDS`.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or larger than [`MAX_CLUSTERS`], or if
    /// `lookahead` is zero (a conservative protocol needs strictly
    /// positive lookahead to make progress).
    pub fn new(models: Vec<M>, lookahead: Duration) -> ShardedEngine<M> {
        assert!(!models.is_empty(), "engine needs at least one cluster");
        assert!(
            models.len() <= MAX_CLUSTERS,
            "too many clusters ({} > {MAX_CLUSTERS})",
            models.len()
        );
        assert!(
            lookahead > Duration::ZERO,
            "conservative lookahead must be positive"
        );
        ShardedEngine {
            clusters: models
                .into_iter()
                .map(|model| ClusterState {
                    model,
                    wheel: TimingWheel::new(),
                    seq: 0,
                    clock: Time::ZERO,
                    events: 0,
                    outbox: Vec::new(),
                })
                .collect(),
            lookahead,
            shards: shard_count(),
            threads: None,
            occ_widths: None,
            occupancy: None,
            series_cfg: None,
            series: None,
            self_prof: false,
            wall: Profiler::disabled(),
            events_processed: 0,
            rounds: 0,
            messages_sent: 0,
            messages_delivered: 0,
            last_window_end: Time::ZERO,
            windows_monotone: true,
        }
    }

    /// Overrides the shard count (otherwise taken from `ECOSCALE_SHARDS`).
    pub fn with_shards(mut self, shards: usize) -> ShardedEngine<M> {
        self.shards = shards.max(1);
        self
    }

    /// Forces the worker-thread count for parallel runs. By default the
    /// engine spawns `min(shards, available_parallelism)` workers, each
    /// owning a contiguous group of shards; results are identical either
    /// way, so this only matters for exercising the barrier under real
    /// concurrency or benchmarking a specific width.
    pub fn with_threads(mut self, threads: usize) -> ShardedEngine<M> {
        self.threads = Some(threads.max(1));
        self
    }

    /// Arms per-window occupancy accounting with one band per width in
    /// `widths`. Occupancy is derived from deterministic event counts, so
    /// arming it never perturbs results, adds no measurable cost, and the
    /// accumulated [`ShardedEngine::occupancy`] export is byte-identical
    /// at any shard/thread layout.
    pub fn with_occupancy(mut self, widths: &[usize]) -> ShardedEngine<M> {
        self.occ_widths = Some(widths.to_vec());
        self.occupancy = None;
        self
    }

    /// Arms wall-clock self-profiling of the engine phases
    /// (drain/decide/process/barrier). Timers are host-dependent — they
    /// are exported via [`ShardedEngine::wall_profile`], never inside
    /// deterministic results.
    pub fn with_self_profiling(mut self) -> ShardedEngine<M> {
        self.self_prof = true;
        self
    }

    /// Arms the per-safe-window telemetry feed: a [`TimeSeries`] of
    /// `retain` windows of `width` simulated time, fed one safe window
    /// at a time at the leader's occupancy fold (`shard.events` counter,
    /// `shard.window_events` histogram). Derived from the same
    /// deterministic per-window event counts as occupancy, so the
    /// accumulated [`ShardedEngine::series`] export is byte-identical at
    /// any shard/thread layout.
    pub fn with_series(mut self, width: Duration, retain: usize) -> ShardedEngine<M> {
        self.series_cfg = Some((width, retain));
        self.series = None;
        self
    }

    /// The occupancy accumulated so far, when armed via
    /// [`ShardedEngine::with_occupancy`].
    pub fn occupancy(&self) -> Option<&ShardOccupancy> {
        self.occupancy.as_ref()
    }

    /// The per-safe-window series accumulated so far, when armed via
    /// [`ShardedEngine::with_series`].
    pub fn series(&self) -> Option<&TimeSeries> {
        self.series.as_ref()
    }

    /// The wall-clock phase timers (disabled and all-zero unless armed
    /// via [`ShardedEngine::with_self_profiling`]). Parallel runs merge
    /// every worker's timers, so phase totals can exceed elapsed wall
    /// time.
    pub fn wall_profile(&self) -> &Profiler {
        &self.wall
    }

    /// Lazily creates the occupancy accumulator on first use so split
    /// runs keep accumulating into one export. `clusters` is passed in
    /// because the parallel path has already moved the cluster states
    /// into shard parts by the time it takes the accumulator.
    fn take_occupancy(&mut self, clusters: usize) -> Option<ShardOccupancy> {
        match self.occupancy.take() {
            Some(occ) => Some(occ),
            None => self
                .occ_widths
                .as_ref()
                .map(|w| ShardOccupancy::new(clusters, w)),
        }
    }

    /// Lazily creates the window series on first use so split runs keep
    /// feeding one export (mirrors [`ShardedEngine::take_occupancy`]).
    fn take_series(&mut self) -> Option<TimeSeries> {
        match self.series.take() {
            Some(s) => Some(s),
            None => self.series_cfg.map(|(w, r)| TimeSeries::new(w, r)),
        }
    }

    /// The requested shard count. The effective count is capped at the
    /// number of clusters.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The engine lookahead.
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// The model of cluster `c`.
    pub fn model(&self, c: usize) -> &M {
        &self.clusters[c].model
    }

    /// Mutable model of cluster `c` (setup between runs).
    pub fn model_mut(&mut self, c: usize) -> &mut M {
        &mut self.clusters[c].model
    }

    /// Consumes the engine, returning the models in cluster order.
    pub fn into_models(self) -> Vec<M> {
        self.clusters.into_iter().map(|c| c.model).collect()
    }

    /// Total events delivered across all clusters.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events delivered on cluster `c`.
    pub fn cluster_events(&self, c: usize) -> u64 {
        self.clusters[c].events
    }

    /// Safe windows executed. Identical at any shard count.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Cross-cluster messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Cross-cluster messages delivered (equals sent after every stop —
    /// the mailbox-conservation invariant).
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// The latest cluster clock: the timestamp of the last event any
    /// cluster processed.
    pub fn clock(&self) -> Time {
        self.clusters
            .iter()
            .map(|c| c.clock)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Seeds `event` on cluster `cluster` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range or `at` is in the cluster's
    /// past.
    pub fn schedule(&mut self, cluster: usize, at: Time, event: M::Event) {
        let c = &mut self.clusters[cluster];
        let key = pack_key(cluster, c.seq);
        c.seq += 1;
        c.wheel.schedule(at, key, event);
    }

    /// CheckPlane hook: safe-window monotonicity (window ends never
    /// regress, no cluster clock beyond the last window) and mailbox
    /// conservation (sent == delivered; stops happen post-drain, so no
    /// message is ever stranded). Read-only; early-outs when disabled.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        let clocks_ok = self
            .clusters
            .iter()
            .all(|c| c.clock <= self.last_window_end || c.events == 0);
        cp.check(
            invariant::SHARD_WINDOW_MONOTONE,
            self.windows_monotone && clocks_ok,
            || {
                format!(
                    "windows_monotone={} last_window_end={} max_clock={}",
                    self.windows_monotone,
                    self.last_window_end,
                    self.clock()
                )
            },
        );
        cp.check_monotone(
            invariant::SHARD_WINDOW_MONOTONE,
            self.last_window_end.as_ps() as f64,
        );
        cp.check(
            invariant::SHARD_MAILBOX_CONSERVED,
            self.messages_sent == self.messages_delivered,
            || {
                format!(
                    "sent {} != delivered {}",
                    self.messages_sent, self.messages_delivered
                )
            },
        );
    }

    /// Serializes the engine's deterministic state: every cluster's
    /// model, wheel, send sequence, clock and event count, plus the
    /// engine counters and window cursor. Observability attachments
    /// (occupancy accumulator, wall-clock profilers) are host- or
    /// layout-facing and are not serialized.
    ///
    /// Every stop of [`ShardedEngine::run_until`] is post-drain, so the
    /// mailboxes and outboxes are empty at every legal snapshot point —
    /// mailbox state never needs to travel.
    ///
    /// # Panics
    ///
    /// Panics if any cluster has staged outbox messages, i.e. if called
    /// from inside an event handler rather than between runs.
    pub fn snapshot_state(&self, w: &mut SnapWriter)
    where
        M: Snapshot,
        M::Event: Snapshot,
    {
        w.put_usize(self.clusters.len());
        w.put_duration(self.lookahead);
        w.put_u64(self.events_processed);
        w.put_u64(self.rounds);
        w.put_u64(self.messages_sent);
        w.put_u64(self.messages_delivered);
        w.put_time(self.last_window_end);
        w.put_bool(self.windows_monotone);
        for c in &self.clusters {
            assert!(
                c.outbox.is_empty(),
                "snapshot requires a post-drain stop (staged outbox messages exist)"
            );
            c.model.snapshot(w);
            c.wheel.snapshot(w);
            w.put_u64(c.seq);
            w.put_time(c.clock);
            w.put_u64(c.events);
        }
    }

    /// Overlays state captured by [`ShardedEngine::snapshot_state`] onto
    /// this engine. The engine must have been rebuilt with the same
    /// cluster count and lookahead (both are verified against the
    /// stream); shard/thread packing is an execution choice and may
    /// differ freely.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Malformed`] on any shape mismatch; nothing is
    /// partially applied in that case only if the caller discards the
    /// engine — use a freshly built engine for restores.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError>
    where
        M: Restore,
        M::Event: Restore,
    {
        let n = r.get_usize()?;
        if n != self.clusters.len() {
            return Err(malformed(format!(
                "snapshot has {n} clusters, engine has {}",
                self.clusters.len()
            )));
        }
        let lookahead = r.get_duration()?;
        if lookahead != self.lookahead {
            return Err(malformed(format!(
                "snapshot lookahead {lookahead} != engine lookahead {}",
                self.lookahead
            )));
        }
        self.events_processed = r.get_u64()?;
        self.rounds = r.get_u64()?;
        self.messages_sent = r.get_u64()?;
        self.messages_delivered = r.get_u64()?;
        self.last_window_end = r.get_time()?;
        self.windows_monotone = r.get_bool()?;
        for c in self.clusters.iter_mut() {
            c.model = M::restore(r)?;
            c.wheel = TimingWheel::restore(r)?;
            c.seq = r.get_u64()?;
            c.clock = r.get_time()?;
            c.events = r.get_u64()?;
            c.outbox.clear();
        }
        Ok(())
    }

    /// Runs until every wheel and mailbox drains. Returns the final
    /// simulation time (the latest cluster clock).
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX, u64::MAX);
        self.clock()
    }

    /// Runs until everything drains, the next window would open after
    /// `horizon`, or at least `max_events` events have been delivered.
    ///
    /// Events *at* the horizon are still delivered. The budget is checked
    /// at window boundaries (windows always complete), so the stop point
    /// is identical at any shard count.
    pub fn run_until(&mut self, horizon: Time, max_events: u64) -> StopReason {
        let shards = self.shards.min(self.clusters.len()).max(1);
        if shards == 1 {
            self.run_sequential(horizon, max_events)
        } else {
            self.run_parallel(shards, horizon, max_events)
        }
    }

    /// Leader decision: stop, or open the next window. Returns the window
    /// end (ps, exclusive) or the stop reason.
    fn decide(
        &self,
        gmin_ps: u64,
        horizon: Time,
        max_events: u64,
        events_so_far: u64,
    ) -> Result<u64, StopReason> {
        if events_so_far >= max_events {
            return Err(StopReason::BudgetExhausted);
        }
        if gmin_ps == u64::MAX {
            return Err(StopReason::QueueEmpty);
        }
        if gmin_ps > horizon.as_ps() {
            return Err(StopReason::HorizonReached);
        }
        let wend = gmin_ps
            .saturating_add(self.lookahead.as_ps())
            .min(horizon.as_ps().saturating_add(1));
        Ok(wend)
    }

    fn note_window(&mut self, wend_ps: u64) {
        let wend = Time::from_ps(wend_ps);
        if wend < self.last_window_end {
            self.windows_monotone = false;
        }
        self.last_window_end = wend;
        self.rounds += 1;
    }

    fn run_sequential(&mut self, horizon: Time, max_events: u64) -> StopReason {
        let clusters = self.clusters.len();
        let lookahead = self.lookahead;
        let mut pending: Vec<OutMsg<M::Event>> = Vec::new();
        let mut occ = self.take_occupancy(clusters);
        let mut series = self.take_series();
        let count_deltas = occ.is_some() || series.is_some();
        let mut deltas: Vec<u64> = vec![0; if count_deltas { clusters } else { 0 }];
        if self.self_prof && !self.wall.is_enabled() {
            self.wall = Profiler::armed();
        }
        let mut wall = std::mem::take(&mut self.wall);
        let reason = loop {
            // Drain: staged messages land in their destination wheels.
            let t = wall.begin();
            for msg in pending.drain(..) {
                self.clusters[msg.dst as usize]
                    .wheel
                    .schedule(msg.at, msg.key, msg.event);
                self.messages_delivered += 1;
            }
            let gmin = self
                .clusters
                .iter()
                .filter_map(|c| c.wheel.peek_time())
                .map(Time::as_ps)
                .min()
                .unwrap_or(u64::MAX);
            wall.end(Phase::Drain, t);
            let t = wall.begin();
            let decision = self.decide(gmin, horizon, max_events, self.events_processed);
            wall.end(Phase::Decide, t);
            let wend = match decision {
                Ok(wend) => wend,
                Err(reason) => break reason,
            };
            self.note_window(wend);
            // Process: every cluster executes its slice of the window.
            let t = wall.begin();
            for idx in 0..clusters {
                let state = &mut self.clusters[idx];
                let n = process_window(idx, state, clusters, lookahead, wend);
                self.events_processed += n;
                if let Some(d) = deltas.get_mut(idx) {
                    *d = n;
                }
                self.messages_sent += state.outbox.len() as u64;
                pending.append(&mut state.outbox);
            }
            wall.end(Phase::Process, t);
            if let Some(occ) = occ.as_mut() {
                occ.fold_window(&deltas);
            }
            if let Some(s) = series.as_mut() {
                feed_window(s, &deltas, wend);
            }
        };
        self.wall = wall;
        self.occupancy = occ;
        self.series = series;
        reason
    }

    fn run_parallel(&mut self, shards: usize, horizon: Time, max_events: u64) -> StopReason {
        let clusters = self.clusters.len();
        let lookahead = self.lookahead;
        // Contiguous balanced partition: cluster c belongs to shard
        // c * shards / clusters (layout never affects results).
        let mut parts: Vec<ShardPart<M>> = (0..shards).map(|_| Vec::new()).collect();
        for (idx, state) in std::mem::take(&mut self.clusters).into_iter().enumerate() {
            parts[idx * shards / clusters].push((idx, state));
        }
        // Workers are capped at the host's parallelism; each owns a
        // contiguous group of shards (shard s → worker s * threads /
        // shards), so oversubscribed shard counts cost bookkeeping, not
        // spin-barrier contention.
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .clamp(1, shards);
        let mut groups: Vec<WorkerShards<M>> = (0..threads).map(|_| Vec::new()).collect();
        for (shard, part) in parts.into_iter().enumerate() {
            groups[shard * threads / shards].push((shard, part));
        }
        let occ = self.take_occupancy(clusters);
        let series = self.take_series();
        let count_deltas = occ.is_some() || series.is_some();
        let shared: RunShared<M::Event> = RunShared {
            barrier: RoundBarrier::new(threads),
            next_times: (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
            window_end: AtomicU64::new(0),
            stop: AtomicU64::new(0),
            total_events: AtomicU64::new(self.events_processed),
            windows_monotone: AtomicBool::new(true),
            mail: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            occ_counts: (0..if count_deltas { clusters } else { 0 })
                .map(|_| AtomicU64::new(0))
                .collect(),
        };
        // The leader (worker 0) needs window bookkeeping the workers don't
        // share; collected via its returned stats.
        let mut leader_windows: Vec<u64> = Vec::new();
        let base_events = self.events_processed;
        let self_prof = self.self_prof;
        let mut occ_slot = Some(occ);
        let mut series_slot = Some(series);
        let results: Vec<WorkerResult<M>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .map(|(worker, mine)| {
                    let shared = &shared;
                    // Only the leader folds occupancy and the window
                    // series; it owns both for the whole run.
                    let (occ, series) = if worker == 0 {
                        (
                            occ_slot.take().expect("leader spawned once"),
                            series_slot.take().expect("leader spawned once"),
                        )
                    } else {
                        (None, None)
                    };
                    scope.spawn(move || {
                        run_worker(
                            worker, shards, clusters, lookahead, horizon, max_events, mine, shared,
                            occ, series, self_prof,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut reason = StopReason::QueueEmpty;
        let mut reassembled: ShardPart<M> = Vec::with_capacity(clusters);
        for (worker, result) in results.into_iter().enumerate() {
            reassembled.extend(result.part);
            self.messages_sent += result.stats.sent;
            self.messages_delivered += result.stats.delivered;
            self.wall.merge(&result.wall);
            if worker == 0 {
                reason = result.reason;
                leader_windows = result.windows;
                self.occupancy = result.occ;
                self.series = result.series;
            }
        }
        reassembled.sort_by_key(|(idx, _)| *idx);
        self.clusters = reassembled.into_iter().map(|(_, s)| s).collect();
        self.events_processed = shared.total_events.load(Ordering::Acquire);
        debug_assert!(self.events_processed >= base_events);
        if !shared.windows_monotone.load(Ordering::Acquire) {
            self.windows_monotone = false;
        }
        for wend in leader_windows {
            self.note_window(wend);
        }
        reason
    }
}

/// Feeds one executed safe window's event counts into the telemetry
/// series. Every decided window delivers at least one event (the `gmin`
/// event always lands inside it), so a zero total only occurs at the
/// parallel leader's first fold — before any window ran — and is
/// skipped to keep the export identical to the sequential path.
fn feed_window(series: &mut TimeSeries, deltas: &[u64], wend_ps: u64) {
    let total: u64 = deltas.iter().sum();
    if total == 0 {
        return;
    }
    series.incr("shard.events", total);
    series.record("shard.window_events", total);
    series.advance(Time::from_ps(wend_ps));
}

/// Executes one cluster's slice of the current window; returns the number
/// of events delivered.
fn process_window<M: ClusterModel>(
    idx: usize,
    state: &mut ClusterState<M>,
    clusters: usize,
    lookahead: Duration,
    wend_ps: u64,
) -> u64 {
    let mut delivered = 0u64;
    loop {
        match state.wheel.peek_time() {
            Some(t) if t.as_ps() < wend_ps => {}
            _ => break,
        }
        let (t, _key, event) = state.wheel.pop().expect("peeked event exists");
        state.clock = t;
        delivered += 1;
        let mut ctx = ClusterCtx {
            now: t,
            cluster: idx,
            clusters,
            lookahead,
            wheel: &mut state.wheel,
            seq: &mut state.seq,
            outbox: &mut state.outbox,
        };
        state.model.handle(t, event, &mut ctx);
    }
    state.events += delivered;
    delivered
}

/// The worker loop — drain → window decision → process — over every shard
/// the worker owns.
#[allow(clippy::too_many_arguments)]
fn run_worker<M: ClusterModel>(
    worker: usize,
    shards: usize,
    clusters: usize,
    lookahead: Duration,
    horizon: Time,
    max_events: u64,
    mut mine: WorkerShards<M>,
    shared: &RunShared<M::Event>,
    mut occ: Option<ShardOccupancy>,
    mut series: Option<TimeSeries>,
    self_prof: bool,
) -> WorkerResult<M> {
    let mut stats = WorkerStats::default();
    let mut windows: Vec<u64> = Vec::new();
    let mut last_wend = 0u64;
    let mut wall = if self_prof {
        Profiler::armed()
    } else {
        Profiler::disabled()
    };
    // Leader-only scratch for the occupancy/series fold.
    let count_deltas = occ.is_some() || series.is_some();
    let mut deltas: Vec<u64> = vec![0; if count_deltas { clusters } else { 0 }];
    let reason = loop {
        // Phase A: drain each owned shard's inboxes into its clusters'
        // wheels. Each mailbox has exactly one reading worker, so the
        // locks are uncontended.
        let t = wall.begin();
        for (shard, part) in mine.iter_mut() {
            for src in 0..shards {
                let inbox = std::mem::take(
                    &mut *shared.mail[src * shards + *shard]
                        .lock()
                        .expect("mailbox poisoned"),
                );
                for msg in inbox {
                    let dst = msg.dst as usize;
                    let slot = part
                        .binary_search_by_key(&dst, |(idx, _)| *idx)
                        .expect("message routed to owning shard");
                    part[slot].1.wheel.schedule(msg.at, msg.key, msg.event);
                    stats.delivered += 1;
                }
            }
            let my_min = part
                .iter()
                .filter_map(|(_, c)| c.wheel.peek_time())
                .map(Time::as_ps)
                .min()
                .unwrap_or(u64::MAX);
            shared.next_times[*shard].store(my_min, Ordering::Release);
        }
        wall.end(Phase::Drain, t);
        let t = wall.begin();
        shared.barrier.wait();
        wall.end(Phase::Barrier, t);
        if worker == 0 {
            let t = wall.begin();
            // The previous window's event counts are complete (its
            // process phase ended at the last barrier); fold them before
            // this round's decision so every executed window — including
            // the final one before a stop — is accounted.
            if !deltas.is_empty() {
                for (d, c) in deltas.iter_mut().zip(&shared.occ_counts) {
                    *d = c.swap(0, Ordering::Relaxed);
                }
                if let Some(occ) = occ.as_mut() {
                    occ.fold_window(&deltas);
                }
                if let Some(s) = series.as_mut() {
                    feed_window(s, &deltas, last_wend);
                }
            }
            // Leader: fold shard horizons into the global window.
            let gmin = shared
                .next_times
                .iter()
                .map(|t| t.load(Ordering::Acquire))
                .min()
                .unwrap_or(u64::MAX);
            let events_so_far = shared.total_events.load(Ordering::Acquire);
            let decision = decide_static(gmin, horizon, max_events, events_so_far, lookahead);
            match decision {
                Ok(wend) => {
                    if wend < last_wend {
                        shared.windows_monotone.store(false, Ordering::Release);
                    }
                    last_wend = wend;
                    windows.push(wend);
                    shared.window_end.store(wend, Ordering::Release);
                    shared.stop.store(0, Ordering::Release);
                }
                Err(reason) => {
                    shared.stop.store(stop_code(reason), Ordering::Release);
                }
            }
            wall.end(Phase::Decide, t);
        }
        let t = wall.begin();
        shared.barrier.wait();
        wall.end(Phase::Barrier, t);
        let code = shared.stop.load(Ordering::Acquire);
        if code != 0 {
            break stop_reason(code);
        }
        // Phase B: process the window and stage outgoing messages.
        let t = wall.begin();
        let wend = shared.window_end.load(Ordering::Acquire);
        let mut processed = 0u64;
        let count_occ = !shared.occ_counts.is_empty();
        for (shard, part) in mine.iter_mut() {
            for (idx, state) in part.iter_mut() {
                let n = process_window(*idx, state, clusters, lookahead, wend);
                processed += n;
                if count_occ {
                    shared.occ_counts[*idx].fetch_add(n, Ordering::Relaxed);
                }
                stats.sent += state.outbox.len() as u64;
                for msg in state.outbox.drain(..) {
                    let dst_shard = msg.dst as usize * shards / clusters;
                    shared.mail[*shard * shards + dst_shard]
                        .lock()
                        .expect("mailbox poisoned")
                        .push(msg);
                }
            }
        }
        stats.events += processed;
        shared.total_events.fetch_add(processed, Ordering::AcqRel);
        wall.end(Phase::Process, t);
        // The barrier between process and the next drain keeps a fast
        // worker from draining while a slow one is still publishing.
        let t = wall.begin();
        shared.barrier.wait();
        wall.end(Phase::Barrier, t);
    };
    WorkerResult {
        part: mine.into_iter().flat_map(|(_, part)| part).collect(),
        stats,
        reason,
        windows,
        occ,
        series,
        wall,
    }
}

/// [`ShardedEngine::decide`] without `&self`, for worker threads.
fn decide_static(
    gmin_ps: u64,
    horizon: Time,
    max_events: u64,
    events_so_far: u64,
    lookahead: Duration,
) -> Result<u64, StopReason> {
    if events_so_far >= max_events {
        return Err(StopReason::BudgetExhausted);
    }
    if gmin_ps == u64::MAX {
        return Err(StopReason::QueueEmpty);
    }
    if gmin_ps > horizon.as_ps() {
        return Err(StopReason::HorizonReached);
    }
    Ok(gmin_ps
        .saturating_add(lookahead.as_ps())
        .min(horizon.as_ps().saturating_add(1)))
}

fn stop_code(reason: StopReason) -> u64 {
    match reason {
        StopReason::QueueEmpty => 1,
        StopReason::HorizonReached => 2,
        StopReason::BudgetExhausted => 3,
    }
}

fn stop_reason(code: u64) -> StopReason {
    match code {
        1 => StopReason::QueueEmpty,
        2 => StopReason::HorizonReached,
        3 => StopReason::BudgetExhausted,
        _ => unreachable!("unknown stop code {code}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// A gossip model: every event re-arms locally a few times and
    /// occasionally messages a pseudo-random peer. All randomness is
    /// per-cluster, so behavior is a pure function of the event set.
    struct Gossip {
        rng: SimRng,
        log: Vec<(u64, u32)>,
        digest: u64,
    }

    impl Gossip {
        fn new(cluster: usize, seed: u64) -> Gossip {
            Gossip {
                rng: SimRng::seed_from(seed ^ ((cluster as u64) << 32)),
                log: Vec::new(),
                digest: 0xcbf29ce484222325,
            }
        }
    }

    impl ClusterModel for Gossip {
        type Event = u32;

        fn handle(&mut self, now: Time, tag: u32, ctx: &mut ClusterCtx<'_, u32>) {
            self.log.push((now.as_ps(), tag));
            self.digest = (self.digest ^ now.as_ps() ^ tag as u64).wrapping_mul(0x100000001b3);
            if tag == 0 {
                return;
            }
            if self.rng.gen_bool(0.3) && ctx.clusters() > 1 {
                let mut dst = self.rng.gen_range_usize(0, ctx.clusters() - 1);
                if dst >= ctx.cluster() {
                    dst += 1;
                }
                let extra = Duration::from_ps(self.rng.gen_range_u64(0, 5_000));
                ctx.send(dst, ctx.lookahead() + extra, tag - 1);
            } else {
                let delay = Duration::from_ps(self.rng.gen_range_u64(1, 2_000));
                ctx.schedule_in(delay, tag - 1);
            }
        }
    }

    fn gossip_engine(clusters: usize, seed: u64, shards: usize) -> ShardedEngine<Gossip> {
        let models = (0..clusters).map(|c| Gossip::new(c, seed)).collect();
        let mut engine = ShardedEngine::new(models, Duration::from_ns(90)).with_shards(shards);
        for c in 0..clusters {
            engine.schedule(c, Time::from_ns(c as u64 * 3), 12);
        }
        engine
    }

    type Fingerprint = (Vec<u64>, Vec<Vec<(u64, u32)>>, u64, u64, u64);

    fn fingerprint(engine: &ShardedEngine<Gossip>) -> Fingerprint {
        (
            (0..engine.clusters())
                .map(|c| engine.model(c).digest)
                .collect(),
            (0..engine.clusters())
                .map(|c| engine.model(c).log.clone())
                .collect(),
            engine.events_processed(),
            engine.rounds(),
            engine.messages_sent(),
        )
    }

    #[test]
    fn sharded_runs_are_byte_identical_to_sequential() {
        let mut baseline = gossip_engine(7, 42, 1);
        baseline.run();
        let want = fingerprint(&baseline);
        for shards in [2, 3, 4, 8, 16] {
            let mut engine = gossip_engine(7, 42, shards);
            engine.run();
            assert_eq!(
                fingerprint(&engine),
                want,
                "shards={shards} diverged from sequential"
            );
            assert_eq!(engine.messages_sent(), engine.messages_delivered());
        }
    }

    #[test]
    fn worker_thread_grouping_preserves_results() {
        let mut baseline = gossip_engine(7, 42, 1);
        baseline.run();
        let want = fingerprint(&baseline);
        // Threads below, equal to, and above the shard count (the last is
        // clamped); every grouping must reproduce the sequential run.
        for threads in [1, 2, 3, 4, 9] {
            let mut engine = gossip_engine(7, 42, 4).with_threads(threads);
            engine.run();
            assert_eq!(
                fingerprint(&engine),
                want,
                "threads={threads} diverged from sequential"
            );
        }
    }

    #[test]
    fn occupancy_accumulates_and_is_layout_independent() {
        let mut base = gossip_engine(6, 11, 1).with_occupancy(&[2, 4]);
        base.run();
        let occ = base.occupancy().expect("occupancy armed");
        // Every executed window delivers at least one event.
        assert_eq!(occ.windows, base.rounds());
        assert_eq!(occ.events, base.events_processed());
        assert!(occ.speedup(4) >= 1.0);
        let want_occ = occ.to_json();
        let want = fingerprint(&base);
        for shards in [2, 4] {
            let mut engine = gossip_engine(6, 11, shards).with_occupancy(&[2, 4]);
            engine.run();
            assert_eq!(fingerprint(&engine), want, "shards={shards} perturbed");
            assert_eq!(
                engine.occupancy().expect("armed").to_json(),
                want_occ,
                "occupancy diverged at shards={shards}"
            );
        }
    }

    #[test]
    fn window_series_feed_is_layout_independent() {
        let mut base = gossip_engine(6, 11, 1).with_series(Duration::from_ns(200), 32);
        base.run();
        let series = base.series().expect("series armed");
        assert_eq!(
            series.lifetime("shard.events"),
            base.events_processed(),
            "every delivered event lands in the series"
        );
        assert!(series.rolled() > 0, "run spans several windows");
        let want = series.to_json();
        let fp = fingerprint(&base);
        for (shards, threads) in [(2, 1), (4, 2), (6, 4)] {
            let mut engine = gossip_engine(6, 11, shards)
                .with_threads(threads)
                .with_series(Duration::from_ns(200), 32);
            engine.run();
            assert_eq!(fingerprint(&engine), fp, "shards={shards} perturbed");
            assert_eq!(
                engine.series().expect("armed").to_json(),
                want,
                "series diverged at shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn window_series_survives_split_runs() {
        let mut whole = gossip_engine(4, 17, 2).with_series(Duration::from_ns(200), 32);
        whole.run();
        let want = whole.series().expect("armed").to_json();

        let mut split = gossip_engine(4, 17, 2).with_series(Duration::from_ns(200), 32);
        split.run_until(Time::from_us(1), u64::MAX);
        split.run();
        assert_eq!(split.series().expect("armed").to_json(), want);
    }

    #[test]
    fn occupancy_survives_split_runs() {
        let mut whole = gossip_engine(4, 17, 2).with_occupancy(&[2]);
        whole.run();
        let want = whole.occupancy().expect("armed").to_json();

        let mut split = gossip_engine(4, 17, 2).with_occupancy(&[2]);
        split.run_until(Time::from_us(1), u64::MAX);
        split.run();
        assert_eq!(split.occupancy().expect("armed").to_json(), want);
    }

    #[test]
    fn self_profiling_times_phases_without_perturbing_results() {
        let mut plain = gossip_engine(6, 11, 1);
        plain.run();
        let want = fingerprint(&plain);

        let mut seq = gossip_engine(6, 11, 1).with_self_profiling();
        seq.run();
        assert_eq!(fingerprint(&seq), want);
        let wall = seq.wall_profile();
        assert!(wall.is_enabled());
        assert_eq!(wall.phase_calls(crate::prof::Phase::Process), seq.rounds());
        assert_eq!(wall.phase_calls(crate::prof::Phase::Barrier), 0);

        let mut par = gossip_engine(6, 11, 4)
            .with_threads(2)
            .with_self_profiling();
        par.run();
        assert_eq!(fingerprint(&par), want);
        let wall = par.wall_profile();
        assert!(wall.phase_calls(crate::prof::Phase::Barrier) > 0);
        assert!(wall.phase_calls(crate::prof::Phase::Process) > 0);
    }

    #[test]
    fn disabled_profiling_leaves_timers_empty() {
        let mut engine = gossip_engine(4, 3, 2);
        engine.run();
        assert!(!engine.wall_profile().is_enabled());
        assert_eq!(engine.wall_profile().total_ns(), 0);
        assert!(engine.occupancy().is_none());
    }

    #[test]
    fn horizon_and_budget_stops_are_layout_independent() {
        for shards in [1, 3] {
            let mut engine = gossip_engine(5, 9, shards);
            let reason = engine.run_until(Time::from_us(2), u64::MAX);
            assert!(
                matches!(reason, StopReason::HorizonReached | StopReason::QueueEmpty),
                "got {reason:?}"
            );
        }
        let mut a = gossip_engine(5, 9, 1);
        let ra = a.run_until(Time::from_us(2), u64::MAX);
        let mut b = gossip_engine(5, 9, 4);
        let rb = b.run_until(Time::from_us(2), u64::MAX);
        assert_eq!(ra, rb);
        assert_eq!(fingerprint(&a), fingerprint(&b));

        let mut c = gossip_engine(5, 9, 1);
        let rc = c.run_until(Time::MAX, 20);
        let mut d = gossip_engine(5, 9, 4);
        let rd = d.run_until(Time::MAX, 20);
        assert_eq!(rc, rd);
        assert_eq!(rc, StopReason::BudgetExhausted);
        assert_eq!(fingerprint(&c), fingerprint(&d));
    }

    #[test]
    fn invariants_hold_after_runs() {
        for shards in [1, 4] {
            let mut engine = gossip_engine(6, 3, shards);
            engine.run();
            let mut cp = CheckPlane::enabled(1);
            engine.check_invariants(&mut cp);
            assert!(cp.ok(), "shards={shards}: {:?}", cp.first());
        }
    }

    #[test]
    fn run_resumes_after_horizon() {
        let mut whole = gossip_engine(4, 17, 2);
        whole.run();
        let want = fingerprint(&whole);

        let mut split = gossip_engine(4, 17, 2);
        split.run_until(Time::from_us(1), u64::MAX);
        split.run();
        assert_eq!(fingerprint(&split), want);
    }

    #[test]
    #[should_panic(expected = "below lookahead")]
    fn undershooting_lookahead_panics() {
        struct Bad;
        impl ClusterModel for Bad {
            type Event = ();
            fn handle(&mut self, _now: Time, _ev: (), ctx: &mut ClusterCtx<'_, ()>) {
                ctx.send(1, Duration::from_ps(1), ());
            }
        }
        let mut engine = ShardedEngine::new(vec![Bad, Bad], Duration::from_ns(50));
        engine.schedule(0, Time::ZERO, ());
        engine.run();
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_lookahead_rejected() {
        struct Noop;
        impl ClusterModel for Noop {
            type Event = ();
            fn handle(&mut self, _: Time, _: (), _: &mut ClusterCtx<'_, ()>) {}
        }
        let _ = ShardedEngine::new(vec![Noop], Duration::ZERO);
    }

    #[test]
    fn shard_count_reads_env_with_default_one() {
        // No env mutation here (process-global); just the default path.
        if std::env::var(SHARDS_ENV).is_err() {
            assert_eq!(shard_count(), 1);
        }
    }

    impl Snapshot for Gossip {
        fn snapshot(&self, w: &mut SnapWriter) {
            self.rng.snapshot(w);
            w.put_usize(self.log.len());
            for &(t, tag) in &self.log {
                w.put_u64(t);
                w.put_u32(tag);
            }
            w.put_u64(self.digest);
        }
    }

    impl Restore for Gossip {
        fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
            let rng = SimRng::restore(r)?;
            let n = r.get_usize()?;
            let mut log = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                log.push((r.get_u64()?, r.get_u32()?));
            }
            let digest = r.get_u64()?;
            Ok(Gossip { rng, log, digest })
        }
    }

    /// Run-to-T, snapshot, restore into a fresh engine (possibly at a
    /// different shard count), run both to the end: fingerprints must
    /// match each other and the uninterrupted run.
    #[test]
    fn snapshot_restore_resumes_identically_across_shard_counts() {
        let mut whole = gossip_engine(7, 42, 1);
        whole.run();
        let want = fingerprint(&whole);

        for (snap_shards, resume_shards) in [(1, 1), (1, 4), (4, 1), (3, 2)] {
            let mut a = gossip_engine(7, 42, snap_shards);
            a.run_until(Time::from_us(1), u64::MAX);
            let mut w = SnapWriter::new();
            a.snapshot_state(&mut w);
            let bytes = w.into_bytes();

            // Fresh engine, models in their *constructed* state: every
            // bit of progress must come from the snapshot overlay.
            let models = (0..7).map(|c| Gossip::new(c, 42)).collect();
            let mut b =
                ShardedEngine::new(models, Duration::from_ns(90)).with_shards(resume_shards);
            b.restore_state(&mut SnapReader::new(&bytes))
                .expect("restore");
            // Re-snapshot before running further: byte-identical.
            let mut w2 = SnapWriter::new();
            b.snapshot_state(&mut w2);
            assert_eq!(
                w2.into_bytes(),
                bytes,
                "re-snapshot diverged ({snap_shards}->{resume_shards})"
            );

            a.run();
            b.run();
            assert_eq!(
                fingerprint(&a),
                want,
                "uninterrupted continuation diverged (shards={snap_shards})"
            );
            assert_eq!(
                fingerprint(&b),
                want,
                "restored continuation diverged ({snap_shards}->{resume_shards})"
            );
        }
    }

    #[test]
    fn restore_rejects_shape_mismatches() {
        let mut a = gossip_engine(4, 7, 1);
        a.run_until(Time::from_us(1), u64::MAX);
        let mut w = SnapWriter::new();
        a.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        // wrong cluster count
        let models = (0..5).map(|c| Gossip::new(c, 7)).collect();
        let mut b = ShardedEngine::new(models, Duration::from_ns(90));
        assert!(matches!(
            b.restore_state(&mut SnapReader::new(&bytes)),
            Err(RestoreError::Malformed { .. })
        ));

        // wrong lookahead
        let models = (0..4).map(|c| Gossip::new(c, 7)).collect();
        let mut c = ShardedEngine::new(models, Duration::from_ns(80));
        assert!(matches!(
            c.restore_state(&mut SnapReader::new(&bytes)),
            Err(RestoreError::Malformed { .. })
        ));
    }
}
