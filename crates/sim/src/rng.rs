//! Seeded randomness with the distributions the workload generators need.
//!
//! Everything random in the reproduction flows through [`SimRng`], a
//! self-contained xoshiro256** generator seeded explicitly (via a
//! splitmix64 expansion of the 64-bit seed), with hand-rolled samplers for
//! the exponential, normal, Zipf and Pareto distributions. No external
//! crates are involved, so the streams are stable across toolchains and
//! fully reproducible offline.

/// A deterministic random source.
///
/// # Example
///
/// ```
/// use ecoscale_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen_range_u64(0, 100), b.gen_range_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The xoshiro256** core step.
    fn next_raw(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw in `[0, bound)` (Lemire's widening-multiply
    /// method with rejection).
    fn uniform_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_raw();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_raw();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Derives an independent child RNG, e.g. one per simulated worker,
    /// so adding workers does not perturb the streams of existing ones.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base = self.next_raw();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.uniform_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.uniform_below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits of a raw draw.
    pub fn gen_unit(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.gen_unit()
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        self.gen_unit() < p
    }

    /// Exponential draw with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // Inverse CDF; guard the log argument away from 0.
        let u = (1.0 - self.gen_unit()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard-normal draw via the Box–Muller transform.
    pub fn gen_std_normal(&mut self) -> f64 {
        let u1 = self.gen_unit().max(f64::MIN_POSITIVE);
        let u2 = self.gen_unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
        mean + std_dev * self.gen_std_normal()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s` (larger `s`
    /// skews harder toward rank 0). Uses inverse-CDF over the precomputable
    /// harmonic weights via rejection-free cumulative search; `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn gen_zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf needs a non-empty support");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be non-negative"
        );
        // For the modest n used by the workloads a direct cumulative scan
        // with on-the-fly weights is fine and allocation-free.
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.gen_unit() * norm;
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(s);
            if u < w {
                return k - 1;
            }
            u -= w;
        }
        n - 1
    }

    /// Pareto draw with scale `x_min` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `x_min` or `alpha` is not positive and finite.
    pub fn gen_pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min.is_finite() && x_min > 0.0, "x_min must be positive");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        let u = (1.0 - self.gen_unit()).max(f64::MIN_POSITIVE);
        x_min / u.powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.gen_range_usize(0, slice.len())]
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    /// Fills a byte buffer.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// The raw xoshiro256** state words, for checkpointing.
    pub fn state_words(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds an RNG mid-stream from checkpointed state words.
    pub fn from_state_words(state: [u64; 4]) -> SimRng {
        SimRng { state }
    }
}

impl crate::snap::Snapshot for SimRng {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        for word in self.state {
            w.put_u64(word);
        }
    }
}

impl crate::snap::Restore for SimRng {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        Ok(SimRng { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let (a, b, c) = (root.next_u64(), c1.next_u64(), c2.next_u64());
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.15, "estimated mean {est}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = SimRng::seed_from(17);
        let n = 10_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[rng.gen_zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
        // rank 0 should hold a large plurality for s=1.2
        assert!(counts[0] as f64 / n as f64 > 0.25);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_ish() {
        let mut rng = SimRng::seed_from(19);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[rng.gen_zipf(4, 0.0)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 2000).abs() < 300, "count {c}");
        }
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = SimRng::seed_from(23);
        for _ in 0..1000 {
            assert!(rng.gen_pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::seed_from(29);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut rng = SimRng::seed_from(37);
        let opts = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*rng.choose(&opts) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).gen_range_u64(5, 5);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn choose_empty_panics() {
        SimRng::seed_from(0).choose::<u8>(&[]);
    }
}
