//! UNILOGIC access paths and their costs.
//!
//! §4.1 contrasts four ways for a Worker's task to get its data processed:
//!
//! * [`AccessPath::Software`] — run on the local CPU,
//! * [`AccessPath::LocalCached`] — the Worker's own accelerator, which
//!   "can also cache its local data" coherently (full ACE port),
//! * [`AccessPath::RemoteUncached`] — another Worker's accelerator
//!   reached over the multi-layer interconnect; it connects through an
//!   ACE-lite port, so "the remote Reconfigurable block should disable
//!   its data cache (and would not be as efficient as a local one)",
//! * [`AccessPath::Dma`] — classic offload: DMA the data across, run,
//!   DMA back. Efficient for bulk, "not efficient for small data
//!   transfers such as messages to synchronize remote threads".
//!
//! [`UnilogicModel`] produces the latency/energy of each path for a given
//! kernel invocation so experiment E6 can sweep data size and find the
//! crossovers the paper asserts.

use core::fmt;

use ecoscale_fpga::AcceleratorModule;
use ecoscale_mem::DramModel;
use ecoscale_noc::{CostModel, NodeId, Route, Topology};
use ecoscale_runtime::{CpuModel, FpgaExecModel};
use ecoscale_sim::{Duration, Energy};

/// How an invocation reaches its compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Local CPU execution.
    Software,
    /// Local accelerator with coherent caching.
    LocalCached,
    /// Remote accelerator, cache disabled, word-granular loads/stores.
    RemoteUncached,
    /// Remote accelerator with bulk DMA in/out.
    Dma,
}

impl AccessPath {
    /// All paths, for sweeps.
    pub const ALL: [AccessPath; 4] = [
        AccessPath::Software,
        AccessPath::LocalCached,
        AccessPath::RemoteUncached,
        AccessPath::Dma,
    ];
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessPath::Software => "software",
            AccessPath::LocalCached => "local-cached",
            AccessPath::RemoteUncached => "remote-uncached",
            AccessPath::Dma => "dma",
        })
    }
}

/// The cost of one invocation over one path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// End-to-end latency.
    pub latency: Duration,
    /// Total energy.
    pub energy: Energy,
    /// Bytes that crossed the interconnect.
    pub network_bytes: u64,
}

/// Cost parameters for the UNILOGIC paths.
#[derive(Debug, Clone)]
pub struct UnilogicModel {
    /// CPU model for the software path.
    pub cpu: CpuModel,
    /// Accelerator energy model.
    pub fpga: FpgaExecModel,
    /// DRAM at each Worker.
    pub dram: DramModel,
    /// Interconnect cost model.
    pub cost: CostModel,
    /// Fraction of accelerator memory accesses that hit its local cache
    /// on the cached path.
    pub cache_hit_rate: f64,
    /// DMA engine setup cost per transfer descriptor.
    pub dma_setup: Duration,
    /// Burst size of the remote uncached path (one cache line).
    pub uncached_burst: u64,
}

impl Default for UnilogicModel {
    fn default() -> Self {
        UnilogicModel {
            cpu: CpuModel::a53_default(),
            fpga: FpgaExecModel::default(),
            dram: DramModel::default(),
            cost: CostModel::ecoscale_defaults(),
            cache_hit_rate: 0.9,
            dma_setup: Duration::from_us(3),
            uncached_burst: 64,
        }
    }
}

impl UnilogicModel {
    /// Costs one invocation of `module` processing `items` hot-loop
    /// iterations over `bytes` of data, issued by `src`, on the
    /// accelerator at `accel` (ignored for [`AccessPath::Software`] /
    /// [`AccessPath::LocalCached`], where compute is at `src`).
    ///
    /// `ops_per_item` is the arithmetic per iteration; `mem_per_item` the
    /// memory accesses per iteration.
    #[allow(clippy::too_many_arguments)]
    pub fn cost<T: Topology>(
        &self,
        topo: &T,
        path: AccessPath,
        module: &AcceleratorModule,
        src: NodeId,
        accel: NodeId,
        items: u64,
        ops_per_item: u64,
        mem_per_item: u64,
        bytes: u64,
    ) -> PathCost {
        let route: Route = topo.route(src, accel);
        match path {
            AccessPath::Software => {
                let (t, e) = self.cpu.exec(items * ops_per_item, items * mem_per_item);
                // data comes from local DRAM once
                let (td, ed) = self.dram.stream(bytes);
                PathCost {
                    latency: t + td,
                    energy: e + ed,
                    network_bytes: 0,
                }
            }
            AccessPath::LocalCached => {
                let (t_exec, e_exec) = self.fpga.exec(module, items, ops_per_item);
                // misses go to local DRAM
                let misses = ((items * mem_per_item) as f64 * (1.0 - self.cache_hit_rate)) as u64;
                let (t_miss, e_miss) = self.dram.access(self.uncached_burst);
                // miss latency overlaps the pipeline except for a fraction
                let stall = Duration::from_ns((t_miss.as_ns_f64() * misses as f64 * 0.1) as u64);
                PathCost {
                    latency: t_exec + stall,
                    energy: e_exec + e_miss * misses as f64,
                    network_bytes: 0,
                }
            }
            AccessPath::RemoteUncached => {
                // every memory access is a word/line-granular round trip
                // over the interconnect (no caching allowed)
                let accesses = (items * mem_per_item).max(1);
                let rt_lat = self.cost.latency(&route, self.uncached_burst) * 2;
                let rt_energy = self.cost.energy(&route, self.uncached_burst) * 2.0;
                // accelerators overlap outstanding requests: assume 4 in
                // flight, so the exposed latency divides by 4
                let exposed =
                    Duration::from_ns((rt_lat.as_ns_f64() * accesses as f64 / 4.0) as u64);
                let (t_exec, e_exec) = self.fpga.exec(module, items, ops_per_item);
                let (_, e_dram) = self.dram.access(self.uncached_burst);
                PathCost {
                    latency: t_exec.max(exposed) + rt_lat, // pipeline hides the smaller
                    energy: e_exec + rt_energy * accesses as f64 + e_dram * accesses as f64,
                    network_bytes: accesses * self.uncached_burst * 2,
                }
            }
            AccessPath::Dma => {
                // descriptor setup + bulk in + exec + bulk out
                let ser_in = self.cost.latency(&route, bytes);
                let ser_out = self.cost.latency(&route, bytes / 2);
                let e_net = self.cost.energy(&route, bytes) + self.cost.energy(&route, bytes / 2);
                let (t_exec, e_exec) = self.fpga.exec(module, items, ops_per_item);
                let (t_dram, e_dram) = self.dram.stream(bytes);
                PathCost {
                    latency: self.dma_setup * 2 + ser_in + t_exec + ser_out + t_dram,
                    energy: e_exec + e_net + e_dram,
                    network_bytes: bytes + bytes / 2,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_fpga::{Bitstream, ModuleId, Resources};
    use ecoscale_noc::TreeTopology;

    fn module() -> AcceleratorModule {
        AcceleratorModule::new(
            ModuleId(0),
            "k",
            Resources::new(800, 16, 32),
            200_000_000,
            1,
            24,
            Bitstream::synthesize(Resources::new(800, 16, 32), 1),
        )
    }

    fn setup() -> (TreeTopology, UnilogicModel, AcceleratorModule) {
        (
            TreeTopology::new(&[4, 4]),
            UnilogicModel::default(),
            module(),
        )
    }

    #[test]
    fn local_cached_beats_software_on_big_kernels() {
        let (topo, m, module) = setup();
        let items = 1_000_000;
        let sw = m.cost(
            &topo,
            AccessPath::Software,
            &module,
            NodeId(0),
            NodeId(0),
            items,
            20,
            2,
            8 << 20,
        );
        let hw = m.cost(
            &topo,
            AccessPath::LocalCached,
            &module,
            NodeId(0),
            NodeId(0),
            items,
            20,
            2,
            8 << 20,
        );
        assert!(hw.latency < sw.latency);
        assert!(hw.energy < sw.energy);
        assert_eq!(hw.network_bytes, 0);
    }

    #[test]
    fn remote_uncached_less_efficient_than_local() {
        // The paper's exact sentence: the remote block "would not be as
        // efficient as a local one".
        let (topo, m, module) = setup();
        let items = 100_000;
        let local = m.cost(
            &topo,
            AccessPath::LocalCached,
            &module,
            NodeId(0),
            NodeId(0),
            items,
            10,
            2,
            1 << 20,
        );
        let remote = m.cost(
            &topo,
            AccessPath::RemoteUncached,
            &module,
            NodeId(0),
            NodeId(15),
            items,
            10,
            2,
            1 << 20,
        );
        assert!(remote.latency > local.latency);
        assert!(remote.energy > local.energy);
        assert!(remote.network_bytes > 0);
    }

    #[test]
    fn loadstore_beats_dma_for_small_transfers() {
        // "DMA operations … are not efficient for small data transfers
        // such as messages to synchronize remote threads."
        let (topo, m, module) = setup();
        // tiny: 8 items over 512 bytes
        let ls = m.cost(
            &topo,
            AccessPath::RemoteUncached,
            &module,
            NodeId(0),
            NodeId(5),
            8,
            4,
            1,
            512,
        );
        let dma = m.cost(
            &topo,
            AccessPath::Dma,
            &module,
            NodeId(0),
            NodeId(5),
            8,
            4,
            1,
            512,
        );
        assert!(
            ls.latency < dma.latency,
            "{} !< {}",
            ls.latency,
            dma.latency
        );
    }

    #[test]
    fn dma_beats_loadstore_for_bulk() {
        let (topo, m, module) = setup();
        let items = 1_000_000;
        let bytes = 16 << 20;
        let ls = m.cost(
            &topo,
            AccessPath::RemoteUncached,
            &module,
            NodeId(0),
            NodeId(5),
            items,
            4,
            2,
            bytes,
        );
        let dma = m.cost(
            &topo,
            AccessPath::Dma,
            &module,
            NodeId(0),
            NodeId(5),
            items,
            4,
            2,
            bytes,
        );
        assert!(dma.latency < ls.latency);
        assert!(dma.network_bytes < ls.network_bytes);
    }

    #[test]
    fn farther_accelerators_cost_more() {
        let (topo, m, module) = setup();
        let near = m.cost(
            &topo,
            AccessPath::RemoteUncached,
            &module,
            NodeId(0),
            NodeId(1),
            1000,
            4,
            2,
            1 << 16,
        );
        let far = m.cost(
            &topo,
            AccessPath::RemoteUncached,
            &module,
            NodeId(0),
            NodeId(15),
            1000,
            4,
            2,
            1 << 16,
        );
        assert!(far.latency > near.latency);
        assert!(far.energy > near.energy);
    }

    #[test]
    fn path_display_and_all() {
        assert_eq!(AccessPath::ALL.len(), 4);
        assert_eq!(AccessPath::LocalCached.to_string(), "local-cached");
        assert_eq!(AccessPath::Dma.to_string(), "dma");
    }
}
