//! Exaflop power extrapolation (the paper's §1 motivation).
//!
//! "Extrapolating from the top HPC systems, such as China's Tianhe-2
//! Supercomputer, we estimate that sustaining exaflop performance
//! requires an enormous 1 GW power. Similar, albeit smaller, figures are
//! obtained by extrapolating even the best system of the Green 500 list."
//!
//! [`machine_power_for_exaflop`] reproduces that arithmetic for the 2015
//! reference machines and for an ECOSCALE-style Worker, including the
//! facility overheads (cooling/PSU, PUE) that take the Tianhe-2 figure
//! from ~525 MW of IT load to the paper's "enormous 1 GW".

use core::fmt;

use ecoscale_sim::Power;

/// The machine classes the introduction extrapolates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineClass {
    /// Tianhe-2 (Nov 2015 TOP500 #1): 33.86 PFLOPS Linpack @ 17.8 MW.
    Tianhe2,
    /// Shoubu (Nov 2015 Green500 #1): ~7.03 GFLOPS/W.
    Green500Best,
    /// An ECOSCALE Worker bundle: CPU + reconfigurable accelerator, with
    /// most FLOPs retired on the fabric at ~5 pJ/op plus node overheads,
    /// giving ~25 GFLOPS/W at the worker level.
    EcoscaleWorker,
}

impl fmt::Display for MachineClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MachineClass::Tianhe2 => "Tianhe-2 scaling",
            MachineClass::Green500Best => "Green500-best scaling",
            MachineClass::EcoscaleWorker => "ECOSCALE worker scaling",
        })
    }
}

impl MachineClass {
    /// Sustained FLOPS per watt of IT load.
    pub fn flops_per_watt(self) -> f64 {
        match self {
            // 33.86e15 / 17.8e6
            MachineClass::Tianhe2 => 1.902e9,
            MachineClass::Green500Best => 7.03e9,
            // 1/(5 pJ) = 200 GFLOPS/W on the fabric; an 8x node overhead
            // (DRAM, interconnect, CPU share) lands at 25 GFLOPS/W
            MachineClass::EcoscaleWorker => 25.0e9,
        }
    }
}

/// The power bill of one exaflop machine built by scaling `class`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// IT (compute) power.
    pub it_power: Power,
    /// Facility total after PUE.
    pub facility_power: Power,
}

/// Power to sustain `exaflops` EFLOPS by scaling `class`, with facility
/// power-usage-effectiveness `pue` (≈ 1.6–2.0 for 2015-era machine
/// rooms).
///
/// # Panics
///
/// Panics if `exaflops` is not positive or `pue < 1`.
///
/// # Example
///
/// ```
/// use ecoscale_core::{machine_power_for_exaflop, MachineClass};
///
/// let bill = machine_power_for_exaflop(MachineClass::Tianhe2, 1.0, 1.9);
/// // the paper's "enormous 1 GW"
/// assert!(bill.facility_power.as_megawatts() > 900.0);
/// ```
pub fn machine_power_for_exaflop(class: MachineClass, exaflops: f64, pue: f64) -> PowerBreakdown {
    assert!(exaflops > 0.0, "exaflops must be positive");
    assert!(pue >= 1.0, "PUE cannot be below 1");
    let flops = exaflops * 1e18;
    let it = flops / class.flops_per_watt();
    PowerBreakdown {
        it_power: Power::from_watts(it),
        facility_power: Power::from_watts(it * pue),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tianhe2_extrapolates_to_a_gigawatt() {
        let bill = machine_power_for_exaflop(MachineClass::Tianhe2, 1.0, 1.9);
        let mw = bill.facility_power.as_megawatts();
        assert!(mw > 900.0 && mw < 1100.0, "{mw} MW");
        assert!(bill.it_power.as_megawatts() > 500.0);
    }

    #[test]
    fn green500_is_smaller_but_still_huge() {
        // "Similar, albeit smaller, figures"
        let t = machine_power_for_exaflop(MachineClass::Tianhe2, 1.0, 1.9);
        let g = machine_power_for_exaflop(MachineClass::Green500Best, 1.0, 1.9);
        assert!(g.facility_power < t.facility_power);
        assert!(g.facility_power.as_megawatts() > 200.0);
    }

    #[test]
    fn ecoscale_worker_lands_near_budget() {
        // DOE exascale target was ~20-40 MW
        let e = machine_power_for_exaflop(MachineClass::EcoscaleWorker, 1.0, 1.4);
        let mw = e.facility_power.as_megawatts();
        assert!(mw > 20.0 && mw < 100.0, "{mw} MW");
    }

    #[test]
    fn power_scales_linearly_with_target() {
        let one = machine_power_for_exaflop(MachineClass::Tianhe2, 1.0, 1.5);
        let two = machine_power_for_exaflop(MachineClass::Tianhe2, 2.0, 1.5);
        let ratio = two.it_power.as_watts() / one.it_power.as_watts();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(MachineClass::Tianhe2.to_string(), "Tianhe-2 scaling");
        assert_eq!(
            MachineClass::EcoscaleWorker.to_string(),
            "ECOSCALE worker scaling"
        );
    }

    #[test]
    #[should_panic(expected = "PUE")]
    fn bad_pue_rejected() {
        machine_power_for_exaflop(MachineClass::Tianhe2, 1.0, 0.5);
    }
}
