//! Driving an [`EcoscaleSystem`] from the ServePlane: open-loop
//! multi-tenant serving over the shared accelerators.
//!
//! `runtime::serve` owns the traffic side — workload generation,
//! admission, batching, SLO accounting. This module is the backend glue:
//! it partitions the spec's tenants across **serving cells** (one
//! [`EcoscaleSystem`] each, run concurrently via
//! [`ecoscale_sim::pool::parallel_map`] with results
//! merged in cell order, so exports are byte-identical at any
//! `ECOSCALE_THREADS`), and inside each cell runs the serving event
//! loop:
//!
//! 1. retire due completions into the plane's SLO ledger,
//! 2. generate/admit arrivals up to the current instant,
//! 3. on each cadence tick: [`EcoscaleSystem::fault_tick`] +
//!    [`EcoscaleSystem::daemon_tick`], feed resilience pressure back
//!    into admission, and check the `serve.*` CheckPlane invariants,
//! 4. dispatch ripe batches onto free worker lanes as single
//!    [`EcoscaleSystem::call`]s whose argument sizes scale with the
//!    batch (one per-dispatch overhead amortized over the whole batch),
//! 5. advance virtual time to the next arrival / completion / ripe
//!    dispatch / cadence tick.
//!
//! Under a FaultPlane campaign the system sheds load instead of
//! stalling: fresh resilience activity halves the admission queue bound
//! for the next window, and SEU fallbacks slow (but never drop) the
//! batches in flight. Every request stays accounted — the
//! `serve.request_conserved` invariant holds at every tick and at drain.

use std::collections::HashMap;

use ecoscale_hls::KernelArgs;
use ecoscale_noc::NodeId;
use ecoscale_runtime::serve::{Batch, Request, ServePlane, ServeSpec, ServingReport};
use ecoscale_runtime::ResilienceConfig;
use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::snap::{malformed, SnapshotBuilder, SnapshotFile};
use ecoscale_sim::{
    pool, CampaignSpec, Duration, FlightRecorder, MetricsRegistry, Restore, RestoreError,
    SnapReader, SnapWriter, Snapshot, TelemetryConfig, Time, TimeSeries, TriggerFire, TriggerKind,
    TriggerPolicy,
};

use crate::report::SystemReport;
use crate::system::{EcoscaleSystem, SystemBuilder};

/// One entry of a serving kernel mix: the HLS source to register at
/// build time plus a binder that materializes arguments for a given
/// total item count (a batch of `k` requests binds `k × items_per_req`
/// items, which is what makes batching amortize the per-dispatch
/// overhead — valid for item-linear kernels only).
#[derive(Debug, Clone)]
pub struct ServeKernel {
    /// Function name (must match the kernel source's name).
    pub name: &'static str,
    /// HLS kernel source registered with the [`SystemBuilder`].
    pub source: &'static str,
    /// Build-time scalar hints (trip-count resolution for synthesis).
    pub hints: HashMap<String, f64>,
    /// Binds arguments for `total_items` items. Must be deterministic.
    pub bind: fn(usize) -> KernelArgs,
}

/// Configuration of one serving simulation.
#[derive(Debug, Clone)]
pub struct ServeSimConfig {
    /// The serving workload and policy.
    pub spec: ServeSpec,
    /// The kernel mix tenants draw requests from (non-empty).
    pub kernels: Vec<ServeKernel>,
    /// Items per request (batch of `k` binds `k * items`).
    pub items: usize,
    /// Workers per Compute Node in each cell's system.
    pub workers_per_node: usize,
    /// Compute Nodes in each cell's system.
    pub compute_nodes: usize,
    /// Serving cells: independent systems the tenants are partitioned
    /// over round-robin (clamped to the tenant count).
    pub cells: usize,
    /// Maintenance cadence: fault/daemon ticks, pressure refresh and
    /// invariant checks fire every `cadence` of serving time.
    pub cadence: Duration,
    /// Fault campaign injected into every cell ([`CampaignSpec::off`]
    /// for a clean run).
    pub faults: CampaignSpec,
    /// Recovery policy when the campaign is active.
    pub resilience: ResilienceConfig,
    /// Telemetry plane: when set, every cell keeps a windowed
    /// [`TimeSeries`] and an armed [`FlightRecorder`], rolled on the
    /// maintenance cadence and merged in cell order into
    /// [`ServeOutcome::telemetry`]. `None` costs one branch per cadence
    /// tick and allocates nothing.
    pub telemetry: Option<TelemetryConfig>,
}

impl ServeSimConfig {
    /// A config serving `spec` over `kernels` with the default backend
    /// shape: one cell of 2×2 workers, 50 us cadence, 96-item requests,
    /// no faults.
    pub fn new(spec: ServeSpec, kernels: Vec<ServeKernel>) -> ServeSimConfig {
        ServeSimConfig {
            spec,
            kernels,
            items: 96,
            workers_per_node: 2,
            compute_nodes: 2,
            cells: 1,
            cadence: Duration::from_us(50),
            faults: CampaignSpec::off(),
            resilience: ResilienceConfig::full(),
            telemetry: None,
        }
    }
}

/// The telemetry a serving run produced when
/// [`ServeSimConfig::telemetry`] was set: the per-cell time series
/// merged in cell order plus every cell's flight recorder (kept
/// separate — event rings are per-cell evidence, not mergeable
/// streams). Byte-identical at any `ECOSCALE_THREADS` /
/// `ECOSCALE_SHARDS` setting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeTelemetry {
    /// Windowed series merged across cells in cell order.
    pub series: TimeSeries,
    /// One flight recorder per cell, in cell order.
    pub flights: Vec<FlightRecorder>,
}

impl ServeTelemetry {
    /// Whether any cell's recorder latched at least one trigger.
    pub fn fired(&self) -> bool {
        self.flights.iter().any(|f| f.fired())
    }

    /// The earliest trigger across cells (ties broken by cell order).
    pub fn first_trigger(&self) -> Option<&TriggerFire> {
        self.flights
            .iter()
            .filter_map(|f| f.first_trigger())
            .min_by_key(|t| t.time)
    }

    /// Canonical telemetry export: the merged series plus every cell's
    /// flight recorder.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"series\":");
        out.push_str(&self.series.to_json());
        out.push_str(",\"flights\":[");
        for (i, f) in self.flights.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_json());
        }
        out.push_str("]}");
        out
    }

    /// The flight-recorder evidence bundle: trigger totals, every
    /// cell's event/trigger rings, and the last `tail` series windows.
    /// This is what an anomaly dump writes to disk.
    pub fn flight_dump_json(&self, tail: usize) -> String {
        let fired: usize = self.flights.iter().map(|f| f.triggers().len()).sum();
        let mut out = String::from("{\"triggers_fired\":");
        out.push_str(&fired.to_string());
        out.push_str(",\"cells\":[");
        for (i, f) in self.flights.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"cell\":");
            out.push_str(&i.to_string());
            out.push_str(",\"flight\":");
            out.push_str(&f.to_json());
            out.push('}');
        }
        out.push_str("],\"series_tail\":");
        out.push_str(&self.series.tail_json(tail));
        out.push('}');
        out
    }
}

/// What one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The merged SLO ledger across all cells.
    pub serving: ServingReport,
    /// Every cell's instruments (system layers + `serve.*`), merged in
    /// cell order.
    pub metrics: MetricsRegistry,
    /// Cell 0's system snapshot carrying the merged `serving` section
    /// and the merged metrics.
    pub report: SystemReport,
    /// Serving time from first arrival opportunity to full drain (the
    /// slowest cell).
    pub makespan: Duration,
    /// SEU software fallbacks across cells (resilience activity).
    pub fallbacks: u64,
    /// Requests the resilience layer lost across cells (must stay 0:
    /// ServePlane sheds at admission, it never drops accepted work).
    pub lost: u64,
    /// Invariant checks run across all cells' serve planes.
    pub checks_run: u64,
    /// Invariant violations across all cells (0 on a healthy run).
    pub violations: u64,
    /// Telemetry (merged series + per-cell flight recorders) when
    /// [`ServeSimConfig::telemetry`] was set.
    pub telemetry: Option<ServeTelemetry>,
}

struct CellResult {
    serving: ServingReport,
    metrics: MetricsRegistry,
    report: SystemReport,
    drained_at: Time,
    fallbacks: u64,
    lost: u64,
    cp: CheckPlane,
    telem: Option<CellTelem>,
}

/// One cell's telemetry state: the windowed series, the flight
/// recorder, and the delta cursors the cadence tick diffs against.
struct CellTelem {
    series: TimeSeries,
    flight: FlightRecorder,
    last_viol: u64,
    last_quar: u64,
}

/// Runs the serving simulation, arming the CheckPlane from
/// `ECOSCALE_CHECK`.
pub fn run_serve_sim(cfg: &ServeSimConfig) -> ServeOutcome {
    let mut cp = CheckPlane::from_env();
    run_serve_sim_with(cfg, &mut cp)
}

/// Runs the serving simulation, absorbing every cell's invariant
/// tallies into `cp`. (Cells always check their own planes at cadence
/// 1; `cp` only controls aggregation.)
///
/// # Panics
///
/// Panics on an empty kernel mix, a zero cadence, or an unbuildable
/// system config.
pub fn run_serve_sim_with(cfg: &ServeSimConfig, cp: &mut CheckPlane) -> ServeOutcome {
    assert!(!cfg.kernels.is_empty(), "serving needs a kernel mix");
    assert!(!cfg.cadence.is_zero(), "cadence must be > 0");
    let results = pool::parallel_map(partition_tenants(cfg), |ids| {
        let mut cell = CellSim::new(cfg, ids);
        cell.run(None);
        cell.into_result()
    });
    merge_results(results, cp)
}

/// Round-robin partition of the spec's tenants over the serving cells
/// (clamped to the tenant count).
fn partition_tenants(cfg: &ServeSimConfig) -> Vec<Vec<u32>> {
    let cells = cfg.cells.clamp(1, cfg.spec.tenants);
    (0..cells)
        .map(|c| {
            (0..cfg.spec.tenants as u32)
                .filter(|t| *t as usize % cells == c)
                .collect()
        })
        .collect()
}

/// Merges per-cell results in cell order into one [`ServeOutcome`],
/// absorbing every cell's invariant tallies into `cp`.
fn merge_results(results: Vec<CellResult>, cp: &mut CheckPlane) -> ServeOutcome {
    let mut iter = results.into_iter();
    let first = iter.next().expect("at least one cell");
    let mut serving = first.serving;
    let mut metrics = first.metrics;
    let mut report = first.report;
    let mut drained_at = first.drained_at;
    let mut fallbacks = first.fallbacks;
    let mut lost = first.lost;
    let mut checks_run = first.cp.checks_run();
    let mut violations = first.cp.violation_count();
    let mut telemetry = first.telem.map(|t| ServeTelemetry {
        series: t.series,
        flights: vec![t.flight],
    });
    cp.absorb(&first.cp);
    for cell in iter {
        serving.merge(&cell.serving);
        metrics.merge(&cell.metrics);
        drained_at = drained_at.max(cell.drained_at);
        fallbacks += cell.fallbacks;
        lost += cell.lost;
        checks_run += cell.cp.checks_run();
        violations += cell.cp.violation_count();
        if let (Some(agg), Some(t)) = (telemetry.as_mut(), cell.telem) {
            agg.series.merge(&t.series);
            agg.flights.push(t.flight);
        }
        cp.absorb(&cell.cp);
    }
    report.serving = Some(serving.clone());
    report.metrics = metrics.clone();
    ServeOutcome {
        serving,
        metrics,
        report,
        makespan: drained_at.since(Time::ZERO),
        fallbacks,
        lost,
        checks_run,
        violations,
        telemetry,
    }
}

fn build_cell_system(cfg: &ServeSimConfig) -> EcoscaleSystem {
    let mut b = SystemBuilder::new()
        .workers_per_node(cfg.workers_per_node)
        .compute_nodes(cfg.compute_nodes);
    for k in &cfg.kernels {
        b = b.kernel(k.source, k.hints.clone());
    }
    let mut system = b.build().expect("serving kernel mix must build");
    // A serving cell provisions its mix eagerly: every lane keeps the
    // whole mix resident so steady-state requests hit the accelerator
    // path (and a fault campaign has real fabric state to upset). A
    // module that does not fit a lane's fabric is skipped — calls for
    // it fall back to software on that lane.
    for lane in 0..system.num_workers() {
        for k in &cfg.kernels {
            let _ = system.load_module(NodeId(lane), k.name);
        }
    }
    system
}

/// One serving cell's event loop held as an explicit state machine, so a
/// run can pause at a loop boundary, serialize itself with
/// [`CellSim::snapshot_state`], and continue — in this process or another
/// — from the byte-identical point. [`run_serve_sim`] drives each cell
/// through this type; checkpoint/resume ([`serve_checkpoint`],
/// [`serve_resume`]) and serving-cell migration ([`serve_migrate`]) are
/// the same loop paused and revived.
pub struct CellSim<'a> {
    cfg: &'a ServeSimConfig,
    ids: Vec<u32>,
    system: EcoscaleSystem,
    plane: ServePlane,
    // the cell checks itself unconditionally; the caller's plane decides
    // whether the tallies are aggregated further
    cp: CheckPlane,
    free_at: Vec<Time>,
    // (completion time, dispatch sequence, batch): retired in
    // (time, seq) order so completions are deterministic
    in_flight: Vec<(Time, u64, Batch)>,
    seq: u64,
    now: Time,
    next_tick: Time,
    last_resil: u64,
    telem: Option<CellTelem>,
}

impl<'a> CellSim<'a> {
    /// Builds one cell hosting `ids`' tenants: a freshly provisioned
    /// system (mix resident on every lane), the fault campaign armed
    /// when `cfg` carries one, and an empty serving ledger at t = 0.
    pub fn new(cfg: &'a ServeSimConfig, ids: Vec<u32>) -> CellSim<'a> {
        let mut system = build_cell_system(cfg);
        if !cfg.faults.is_off() {
            system.enable_faults(&cfg.faults, cfg.resilience);
        }
        let lanes = system.num_workers();
        CellSim {
            plane: ServePlane::for_tenants(&cfg.spec, cfg.kernels.len(), &ids),
            cp: CheckPlane::enabled(1),
            free_at: vec![Time::ZERO; lanes],
            in_flight: Vec::new(),
            seq: 0,
            now: Time::ZERO,
            next_tick: Time::ZERO + cfg.cadence,
            last_resil: 0,
            telem: cfg.telemetry.as_ref().map(|tc| CellTelem {
                series: TimeSeries::new(tc.window, tc.retain),
                flight: FlightRecorder::armed(tc.flight, tc.policy),
                last_viol: 0,
                last_quar: 0,
            }),
            system,
            cfg,
            ids,
        }
    }

    /// Current cell time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Runs the serving loop. With `limit = None` runs to full drain;
    /// with `Some(t)` pauses before the first instant past `t` — a safe
    /// window boundary where every layer's state is self-consistent and
    /// [`CellSim::snapshot_state`] captures the run exactly. Returns
    /// `true` once drained. Re-entering after a pause (or a restore)
    /// continues bit-identically to an uninterrupted run.
    pub fn run(&mut self, limit: Option<Time>) -> bool {
        loop {
            // 1. retire completions due
            if self.in_flight.iter().any(|(t, _, _)| *t <= self.now) {
                let mut due: Vec<(Time, u64, Batch)> = Vec::new();
                self.in_flight.retain_mut(|entry| {
                    if entry.0 <= self.now {
                        let batch = Batch {
                            kernel: entry.2.kernel,
                            requests: std::mem::take(&mut entry.2.requests),
                        };
                        due.push((entry.0, entry.1, batch));
                        false
                    } else {
                        true
                    }
                });
                due.sort_by_key(|(t, s, _)| (*t, *s));
                for (t, _, b) in &due {
                    self.plane.complete_batch(b, *t);
                }
            }

            // 2. arrivals up to now
            self.plane.pop_arrivals(self.now);

            // 3. cadence maintenance (the advance step lands exactly on
            // tick boundaries while work remains)
            while self.next_tick <= self.now {
                self.system.fault_tick();
                self.system.daemon_tick();
                let resil = self
                    .system
                    .resilience()
                    .map(|r| r.failures() + r.fallbacks() + r.quarantines())
                    .unwrap_or(0);
                self.plane.set_pressure(resil > self.last_resil);
                self.last_resil = resil;
                self.plane.check_invariants(&mut self.cp);
                self.telem_tick(self.next_tick);
                self.next_tick += self.cfg.cadence;
            }

            // 4. dispatch ripe batches onto free lanes
            let lanes = self.free_at.len();
            while self.plane.dispatch_ready(self.now) {
                let lane = match (0..lanes).find(|&l| self.free_at[l] <= self.now) {
                    Some(l) => l,
                    None => break,
                };
                let batch = self
                    .plane
                    .take_batch(self.now)
                    .expect("ready implies queued");
                let kernel = &self.cfg.kernels[batch.kernel as usize];
                let mut args = (kernel.bind)(self.cfg.items * batch.len());
                match self.system.call(NodeId(lane), kernel.name, &mut args) {
                    Ok(out) => {
                        let done = self.now + self.cfg.spec.overhead + out.latency;
                        self.free_at[lane] = done;
                        self.in_flight.push((done, self.seq, batch));
                        self.seq += 1;
                    }
                    Err(_) => self.plane.fail_batch(&batch, self.now),
                }
            }

            // 5. advance to the next interesting instant
            let mut next: Option<Time> = None;
            let mut fold = |t: Time| next = Some(next.map_or(t, |n: Time| n.min(t)));
            if let Some(a) = self.plane.next_arrival() {
                fold(a);
            }
            for (t, _, _) in &self.in_flight {
                fold(*t);
            }
            if self.plane.queued() > 0 {
                let ripe = self.plane.ripe_at(self.now).expect("queued");
                let lane = self.free_at.iter().copied().min().expect("lanes");
                fold(ripe.max(lane));
            }
            match next {
                // while work remains, maintenance keeps firing on cadence
                Some(t) => {
                    let t = t.min(self.next_tick);
                    let target = if t > self.now {
                        t
                    } else {
                        Time::from_ps(self.now.as_ps() + 1)
                    };
                    // pause *before* stepping past the limit: steps 1-4
                    // are idempotent at a fixed `now`, so re-entering
                    // here continues exactly where we stopped
                    if limit.is_some_and(|l| target > l) {
                        return false;
                    }
                    self.now = target;
                }
                None => break,
            }
        }
        debug_assert!(self.plane.drained());
        true
    }

    /// One telemetry maintenance tick at `at` (a cadence boundary or
    /// the drain instant): rolls the serve plane's windowed SLO ledger
    /// into the series, then diffs the CheckPlane and resilience layers
    /// for trigger-worthy anomalies. One branch when telemetry is off.
    fn telem_tick(&mut self, at: Time) {
        let t = match self.telem.as_mut() {
            Some(t) => t,
            None => return,
        };
        self.plane.telemetry_tick(at, &mut t.series, &mut t.flight);
        let window = t.series.window_index(at);
        let viol = self.cp.violation_count();
        if viol > t.last_viol {
            let fresh = viol - t.last_viol;
            t.series.incr("check.violations", fresh);
            let cp = &self.cp;
            t.flight
                .trigger(at, window, TriggerKind::CheckViolation, || {
                    format!(
                        "{fresh} new invariant violation(s), first: {:?}",
                        cp.first()
                    )
                });
            t.last_viol = viol;
        }
        if let Some(r) = self.system.resilience() {
            t.series.set_gauge("resil.fallbacks", r.fallbacks());
            let q = r.quarantines();
            if q > t.last_quar {
                let fresh = q - t.last_quar;
                t.series.incr("resil.quarantines", fresh);
                t.flight.trigger(at, window, TriggerKind::Quarantine, || {
                    format!(
                        "{fresh} new quarantine(s), domains: {:?}",
                        r.quarantined_domains()
                    )
                });
                t.last_quar = q;
            }
        }
    }

    /// Finishes the cell: runs the final invariant pass, flushes the
    /// telemetry series (closing the partial window and proving window
    /// conservation), and folds the system's and the plane's
    /// instruments into one [`CellResult`].
    fn into_result(mut self) -> CellResult {
        self.plane.check_invariants(&mut self.cp);
        self.telem_tick(self.now);
        if let Some(t) = self.telem.as_mut() {
            t.series.finish(self.now);
            t.series.check_conservation(&mut self.cp);
        }
        let mut metrics = self.system.export_metrics();
        self.plane.export_metrics(&mut metrics);
        let (fallbacks, lost) = self
            .system
            .resilience()
            .map(|r| (r.fallbacks(), r.lost()))
            .unwrap_or((0, 0));
        let mut report = SystemReport::capture(&self.system);
        let serving = self.plane.report();
        report.serving = Some(serving.clone());
        CellResult {
            serving,
            metrics,
            report,
            drained_at: self.now,
            fallbacks,
            lost,
            cp: self.cp,
            telem: self.telem,
        }
    }

    /// Serializes the cell's complete state: hosted tenants, loop
    /// cursors, lane occupancy, the in-flight dispatch ledger, the
    /// ServePlane, the whole [`EcoscaleSystem`] and the cell's
    /// CheckPlane tallies. Pair with a section of a versioned
    /// [`SnapshotBuilder`] stream for checksummed storage.
    pub fn snapshot_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.ids.len());
        for id in &self.ids {
            w.put_u32(*id);
        }
        self.now.snapshot(w);
        self.next_tick.snapshot(w);
        w.put_u64(self.seq);
        w.put_u64(self.last_resil);
        w.put_usize(self.free_at.len());
        for t in &self.free_at {
            t.snapshot(w);
        }
        w.put_usize(self.in_flight.len());
        for (t, s, b) in &self.in_flight {
            t.snapshot(w);
            w.put_u64(*s);
            w.put_u32(b.kernel);
            w.put_usize(b.requests.len());
            for q in &b.requests {
                w.put_u64(q.id);
                w.put_u32(q.tenant);
                w.put_u32(q.kernel);
                q.arrival.snapshot(w);
                q.dispatched.snapshot(w);
                q.deadline.snapshot(w);
            }
        }
        self.plane.snapshot_state(w);
        self.system.snapshot_state(w);
        self.cp.snapshot(w);
        match &self.telem {
            Some(t) => {
                w.put_u8(1);
                t.series.snapshot(w);
                t.flight.snapshot(w);
                w.put_u64(t.last_viol);
                w.put_u64(t.last_quar);
            }
            None => w.put_u8(0),
        }
    }

    /// Overlays state captured by [`CellSim::snapshot_state`] onto this
    /// freshly built cell. On error the cell may be partially
    /// overwritten and must be discarded — nothing is ever served from
    /// a partially applied snapshot.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] on truncated/malformed data or when the snapshot
    /// disagrees with this cell's build configuration (tenant set, lane
    /// count, kernel mix, fault arming).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        let n = r.get_usize()?;
        if n != self.ids.len() {
            return Err(malformed(format!(
                "snapshot hosts {n} tenants, this cell hosts {}",
                self.ids.len()
            )));
        }
        for want in &self.ids {
            let got = r.get_u32()?;
            if got != *want {
                return Err(malformed(format!(
                    "snapshot hosts tenant {got} where this cell hosts {want}"
                )));
            }
        }
        self.now = Time::restore(r)?;
        self.next_tick = Time::restore(r)?;
        self.seq = r.get_u64()?;
        self.last_resil = r.get_u64()?;
        let lanes = r.get_usize()?;
        if lanes != self.free_at.len() {
            return Err(malformed(format!(
                "snapshot has {lanes} lanes, this cell has {}",
                self.free_at.len()
            )));
        }
        for slot in &mut self.free_at {
            *slot = Time::restore(r)?;
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "cell claims {n} in-flight batches but only {} bytes remain",
                r.remaining()
            )));
        }
        self.in_flight.clear();
        let mut prev_seq: Option<u64> = None;
        for i in 0..n {
            let t = Time::restore(r)?;
            if t <= self.now {
                return Err(malformed(format!(
                    "in-flight batch {i} completes at {t}, not after now"
                )));
            }
            let s = r.get_u64()?;
            if prev_seq.is_some_and(|p| p >= s) || s >= self.seq {
                return Err(malformed(format!("in-flight sequence unsorted at {i}")));
            }
            prev_seq = Some(s);
            let kernel = r.get_u32()?;
            if kernel as usize >= self.cfg.kernels.len() {
                return Err(malformed(format!(
                    "in-flight batch {i} uses kernel {kernel}, mix has {}",
                    self.cfg.kernels.len()
                )));
            }
            let m = r.get_usize()?;
            if m == 0 || m > r.remaining() {
                return Err(malformed(format!(
                    "in-flight batch {i} claims {m} requests"
                )));
            }
            let mut requests = Vec::with_capacity(m);
            for _ in 0..m {
                requests.push(Request {
                    id: r.get_u64()?,
                    tenant: r.get_u32()?,
                    kernel: r.get_u32()?,
                    arrival: Time::restore(r)?,
                    dispatched: Time::restore(r)?,
                    deadline: Time::restore(r)?,
                });
            }
            self.in_flight.push((t, s, Batch { kernel, requests }));
        }
        self.plane.restore_state(r)?;
        self.system.restore_state(r)?;
        self.cp = CheckPlane::restore(r)?;
        let armed = r.get_u8()? != 0;
        if armed != self.telem.is_some() {
            return Err(malformed(format!(
                "snapshot telemetry armed={armed}, this config has armed={}",
                self.telem.is_some()
            )));
        }
        if let Some(t) = self.telem.as_mut() {
            t.series = TimeSeries::restore(r)?;
            t.flight = FlightRecorder::restore(r)?;
            t.last_viol = r.get_u64()?;
            t.last_quar = r.get_u64()?;
        }
        Ok(())
    }

    /// Restores this cell like [`CellSim::restore_state`] but then
    /// **migrates** its tenants onto healthy hardware: the restored
    /// system (with whatever upsets, quarantines and fault history it
    /// carried) is discarded and replaced by a freshly provisioned,
    /// fault-free one. The ServePlane ledger and the in-flight dispatch
    /// ledger carry every accepted request across the move, so the
    /// continuation completes them all — zero lost requests.
    ///
    /// # Errors
    ///
    /// Exactly those of [`CellSim::restore_state`].
    pub fn migrate_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), RestoreError> {
        self.restore_state(r)?;
        self.system = build_cell_system(self.cfg);
        Ok(())
    }
}

/// Writes the "meta" section pinning the checkpoint's configuration:
/// the serving spec, the fault campaign, the backend shape and the
/// kernel-mix names. Resume refuses a snapshot whose meta disagrees
/// with the caller's config.
fn write_meta(cfg: &ServeSimConfig, cells: usize, w: &mut SnapWriter) {
    w.put_str(&cfg.spec.to_string());
    w.put_str(&cfg.faults.to_string());
    w.put_usize(cfg.items);
    w.put_usize(cfg.workers_per_node);
    w.put_usize(cfg.compute_nodes);
    w.put_usize(cells);
    w.put_duration(cfg.cadence);
    match &cfg.telemetry {
        Some(tc) => {
            w.put_u8(1);
            w.put_duration(tc.window);
            w.put_usize(tc.retain);
            w.put_usize(tc.flight);
            tc.policy.snapshot(w);
        }
        None => w.put_u8(0),
    }
    w.put_usize(cfg.kernels.len());
    for k in &cfg.kernels {
        w.put_str(k.name);
    }
}

fn check_meta(
    cfg: &ServeSimConfig,
    cells: usize,
    r: &mut SnapReader<'_>,
) -> Result<(), RestoreError> {
    fn expect<T: PartialEq + std::fmt::Debug>(
        what: &str,
        got: T,
        want: T,
    ) -> Result<(), RestoreError> {
        if got == want {
            Ok(())
        } else {
            Err(malformed(format!(
                "snapshot {what} is {got:?}, this config has {want:?}"
            )))
        }
    }
    expect("serve spec", r.get_str()?, cfg.spec.to_string())?;
    expect("fault campaign", r.get_str()?, cfg.faults.to_string())?;
    expect("items per request", r.get_usize()?, cfg.items)?;
    expect("workers per node", r.get_usize()?, cfg.workers_per_node)?;
    expect("compute nodes", r.get_usize()?, cfg.compute_nodes)?;
    expect("cells", r.get_usize()?, cells)?;
    expect("cadence", r.get_duration()?, cfg.cadence)?;
    expect("telemetry armed", r.get_u8()? != 0, cfg.telemetry.is_some())?;
    if let Some(tc) = &cfg.telemetry {
        expect("telemetry window", r.get_duration()?, tc.window)?;
        expect("telemetry retain", r.get_usize()?, tc.retain)?;
        expect("telemetry flight cap", r.get_usize()?, tc.flight)?;
        expect("telemetry policy", TriggerPolicy::restore(r)?, tc.policy)?;
    }
    expect("kernel count", r.get_usize()?, cfg.kernels.len())?;
    for k in &cfg.kernels {
        expect("kernel name", r.get_str()?.as_str(), k.name)?;
    }
    if !r.is_exhausted() {
        return Err(malformed("meta section has trailing bytes".to_owned()));
    }
    Ok(())
}

/// Runs the serving simulation up to `at` and serializes the whole run
/// into one versioned snapshot: a `meta` section pinning the config and
/// one checksummed `cell.N` section per serving cell, each paused at a
/// safe loop boundary no later than `at`. Cells already drained by `at`
/// are captured drained. Feed the bytes to [`serve_resume`] (same
/// config) to continue the run bit-identically, or to [`serve_migrate`]
/// to move one cell's tenants onto healthy hardware.
///
/// # Panics
///
/// Panics on an empty kernel mix or a zero cadence (as
/// [`run_serve_sim`]).
pub fn serve_checkpoint(cfg: &ServeSimConfig, at: Time) -> Vec<u8> {
    assert!(!cfg.kernels.is_empty(), "serving needs a kernel mix");
    assert!(!cfg.cadence.is_zero(), "cadence must be > 0");
    let parts = partition_tenants(cfg);
    let cells = parts.len();
    let states = pool::parallel_map(parts, |ids| {
        let mut cell = CellSim::new(cfg, ids);
        cell.run(Some(at));
        let mut w = SnapWriter::new();
        cell.snapshot_state(&mut w);
        w.into_bytes()
    });
    let mut b = SnapshotBuilder::new();
    b.section("meta", |w| write_meta(cfg, cells, w));
    for (i, state) in states.iter().enumerate() {
        b.section(&format!("cell.{i}"), |w| w.put_bytes(state));
    }
    b.finish()
}

/// Resumes a [`serve_checkpoint`] stream to full drain under the same
/// config, arming the outer CheckPlane from `ECOSCALE_CHECK`. The
/// continuation is bit-identical to the uninterrupted
/// [`run_serve_sim`] of the same config — metrics, report and serving
/// exports byte-for-byte.
///
/// # Errors
///
/// [`RestoreError`] when the stream is corrupt (bad magic, future
/// version, truncation, checksum mismatch — all refused before any
/// state is touched) or disagrees with `cfg`.
pub fn serve_resume(cfg: &ServeSimConfig, bytes: &[u8]) -> Result<ServeOutcome, RestoreError> {
    let mut cp = CheckPlane::from_env();
    serve_resume_with(cfg, bytes, &mut cp)
}

/// [`serve_resume`] absorbing every cell's invariant tallies into `cp`.
///
/// # Errors
///
/// As [`serve_resume`].
pub fn serve_resume_with(
    cfg: &ServeSimConfig,
    bytes: &[u8],
    cp: &mut CheckPlane,
) -> Result<ServeOutcome, RestoreError> {
    resume_inner(cfg, bytes, cp, None)
}

/// Restores a [`serve_checkpoint`] stream but migrates cell `victim`'s
/// tenants onto a freshly provisioned, fault-free system (the serving
/// answer to a quarantined cell): its ServePlane ledger and in-flight
/// batches move wholesale, so no accepted request is lost. The other
/// cells resume in place. Arms the outer CheckPlane from
/// `ECOSCALE_CHECK`.
///
/// # Errors
///
/// As [`serve_resume`], plus a malformed error for a `victim` index out
/// of range.
pub fn serve_migrate(
    cfg: &ServeSimConfig,
    bytes: &[u8],
    victim: usize,
) -> Result<ServeOutcome, RestoreError> {
    let mut cp = CheckPlane::from_env();
    serve_migrate_with(cfg, bytes, victim, &mut cp)
}

/// [`serve_migrate`] absorbing every cell's invariant tallies into `cp`.
///
/// # Errors
///
/// As [`serve_migrate`].
pub fn serve_migrate_with(
    cfg: &ServeSimConfig,
    bytes: &[u8],
    victim: usize,
    cp: &mut CheckPlane,
) -> Result<ServeOutcome, RestoreError> {
    resume_inner(cfg, bytes, cp, Some(victim))
}

fn resume_inner(
    cfg: &ServeSimConfig,
    bytes: &[u8],
    cp: &mut CheckPlane,
    migrate: Option<usize>,
) -> Result<ServeOutcome, RestoreError> {
    assert!(!cfg.kernels.is_empty(), "serving needs a kernel mix");
    assert!(!cfg.cadence.is_zero(), "cadence must be > 0");
    let file = SnapshotFile::parse(bytes)?;
    // snap.version_refused: every resume proves that a future-version
    // copy of this very stream is refused outright. The check runs on a
    // live plane and is absorbed with the cells' tallies.
    let mut fcp = CheckPlane::enabled(1);
    if bytes.len() >= 12 {
        let mut bumped = bytes.to_vec();
        bumped[8..12].copy_from_slice(&(file.version() + 1).to_le_bytes());
        fcp.check(
            invariant::SNAP_VERSION_REFUSED,
            matches!(
                SnapshotFile::parse(&bumped),
                Err(RestoreError::FutureVersion { .. })
            ),
            || "a future-version snapshot was not refused".to_owned(),
        );
    }
    check_meta(
        cfg,
        partition_tenants(cfg).len(),
        &mut file.section("meta")?,
    )?;
    let parts: Vec<(usize, Vec<u32>)> = partition_tenants(cfg).into_iter().enumerate().collect();
    if let Some(v) = migrate {
        if v >= parts.len() {
            return Err(malformed(format!(
                "migration victim {v} out of range: {} cells",
                parts.len()
            )));
        }
    }
    let results = pool::parallel_map(parts, |(i, ids)| -> Result<CellResult, RestoreError> {
        let mut sect = file.section(&format!("cell.{i}"))?;
        let payload = sect.get_bytes()?;
        if !sect.is_exhausted() {
            return Err(malformed(format!("cell.{i} section has trailing bytes")));
        }
        let mut cell = CellSim::new(cfg, ids);
        let mut r = SnapReader::new(&payload);
        if migrate == Some(i) {
            cell.migrate_from(&mut r)?;
        } else {
            cell.restore_state(&mut r)?;
            // snap.roundtrip_identical: the restored cell re-serializes
            // to the exact bytes it was restored from
            let mut w = SnapWriter::new();
            cell.snapshot_state(&mut w);
            let same = w.into_bytes() == payload;
            cell.cp
                .check(invariant::SNAP_ROUNDTRIP_IDENTICAL, same, || {
                    format!("cell {i} re-serialization differs from its snapshot")
                });
        }
        if !r.is_exhausted() {
            return Err(malformed(format!("cell.{i} state has trailing bytes")));
        }
        cell.run(None);
        Ok(cell.into_result())
    });
    let mut cells = Vec::with_capacity(results.len());
    for res in results {
        cells.push(res?);
    }
    cp.absorb(&fcp);
    let mut out = merge_results(cells, cp);
    out.checks_run += fcp.checks_run();
    out.violations += fcp.violation_count();
    Ok(out)
}

/// Convenience: builds a scalar-hint map for a [`ServeKernel`].
pub fn serve_hints(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
    pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
}

/// A minimal item-linear mix for tests and smoke runs that cannot see
/// the `apps` crate (which hosts the full mix in `apps::mix`).
pub fn linear_test_mix() -> Vec<ServeKernel> {
    fn bind_saxpy(n: usize) -> KernelArgs {
        let mut a = KernelArgs::new();
        a.bind_array("x", (0..n).map(|i| i as f64 * 0.5).collect())
            .bind_array("y", (0..n).map(|i| (i % 7) as f64).collect())
            .bind_array("z", vec![0.0; n])
            .bind_scalar("a", 3.0)
            .bind_scalar("n", n as f64);
        a
    }
    fn bind_smooth(n: usize) -> KernelArgs {
        let mut a = KernelArgs::new();
        a.bind_array("x", (0..n + 2).map(|i| (i % 11) as f64).collect())
            .bind_array("y", vec![0.0; n])
            .bind_scalar("n", n as f64);
        a
    }
    vec![
        ServeKernel {
            name: "saxpy",
            source: "kernel saxpy(in float x[], in float y[], out float z[], float a, int n) {
                for (i in 0 .. n) { z[i] = a * x[i] + y[i]; }
            }",
            hints: serve_hints(&[("a", 3.0), ("n", 96.0)]),
            bind: bind_saxpy,
        },
        ServeKernel {
            name: "smooth",
            source: "kernel smooth(in float x[], out float y[], int n) {
                for (i in 0 .. n) { y[i] = 0.25 * x[i] + 0.5 * x[i + 1] + 0.25 * x[i + 2]; }
            }",
            hints: serve_hints(&[("n", 96.0)]),
            bind: bind_smooth,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_sim::json;

    fn quick_cfg() -> ServeSimConfig {
        let spec =
            ServeSpec::parse("seed=21,tenants=4,rate=100000,horizon=500us,batch=4,deadline=200us")
                .unwrap();
        ServeSimConfig::new(spec, linear_test_mix())
    }

    #[test]
    fn clean_run_conserves_and_completes() {
        let cfg = quick_cfg();
        let mut cp = CheckPlane::enabled(1);
        let out = run_serve_sim_with(&cfg, &mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(out.violations, 0);
        assert!(out.checks_run > 0);
        assert!(out.serving.conserved(), "drained run conserves requests");
        assert!(out.serving.completed() > 0);
        assert_eq!(out.lost, 0);
        assert!(out.makespan >= cfg.spec.horizon);
        // metrics carry both the system layers and the serve plane
        assert!(out.metrics.counter("serve.submitted").unwrap() > 0);
        assert!(out.metrics.counter("system.calls_cpu").is_some());
        // the report embeds the serving section
        let serving = out.report.serving.as_ref().expect("serving section");
        assert_eq!(serving.completed(), out.serving.completed());
        let parsed = json::parse(&out.report.to_json()).unwrap();
        assert!(parsed
            .get("serving")
            .and_then(|s| s.get("completed"))
            .is_some());
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = quick_cfg();
        let a = run_serve_sim(&cfg);
        let b = run_serve_sim(&cfg);
        assert_eq!(a.serving, b.serving);
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn cells_partition_tenants_without_losing_traffic() {
        let cfg = quick_cfg();
        let mut split = quick_cfg();
        split.cells = 2;
        let whole = run_serve_sim(&cfg);
        let split = run_serve_sim(&split);
        // per-tenant arrival streams are salted by global id: the
        // submitted totals agree regardless of the partition
        assert_eq!(whole.serving.submitted(), split.serving.submitted());
        assert_eq!(split.serving.tenants.len(), 4);
        assert!(split.serving.conserved());
        // cells clamp to the tenant count
        let mut over = quick_cfg();
        over.cells = 64;
        let over = run_serve_sim(&over);
        assert!(over.serving.conserved());
    }

    #[test]
    fn batching_on_beats_batching_off_on_goodput() {
        // saturating load: per-dispatch overhead dominates unbatched
        // service, so coalescing buys real capacity
        let spec = ServeSpec::parse(
            "seed=33,tenants=4,rate=350000,horizon=1ms,batch=8,deadline=300us,queue=32",
        )
        .unwrap();
        let mut on = ServeSimConfig::new(spec.clone(), linear_test_mix());
        on.items = 32;
        let mut off = on.clone();
        off.spec = spec.batching_off();
        let on = run_serve_sim(&on);
        let off = run_serve_sim(&off);
        assert!(on.serving.conserved() && off.serving.conserved());
        assert!(
            on.serving.goodput() > off.serving.goodput(),
            "batching on {} must beat off {}",
            on.serving.goodput(),
            off.serving.goodput()
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let mut cfg = quick_cfg();
        cfg.cells = 2;
        let full = run_serve_sim(&cfg);
        for at_us in [0u64, 120, 250] {
            let bytes = serve_checkpoint(&cfg, Time::from_us(at_us));
            let mut cp = CheckPlane::enabled(1);
            let resumed = serve_resume_with(&cfg, &bytes, &mut cp).expect("resume");
            assert!(cp.ok(), "{:?}", cp.first());
            assert_eq!(resumed.serving, full.serving, "at {at_us}us");
            assert_eq!(resumed.metrics.to_json(), full.metrics.to_json());
            assert_eq!(resumed.report.to_json(), full.report.to_json());
            assert_eq!(resumed.makespan, full.makespan);
        }
    }

    #[test]
    fn faulted_checkpoint_resume_is_bit_identical() {
        let mut cfg = quick_cfg();
        cfg.faults = CampaignSpec::parse("seed=5,seu=200us,smmu=0.002,scrub=400us").unwrap();
        let full = run_serve_sim(&cfg);
        let bytes = serve_checkpoint(&cfg, Time::from_us(200));
        let mut cp = CheckPlane::enabled(1);
        let resumed = serve_resume_with(&cfg, &bytes, &mut cp).expect("resume");
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(resumed.serving, full.serving);
        assert_eq!(resumed.metrics.to_json(), full.metrics.to_json());
        assert_eq!(resumed.report.to_json(), full.report.to_json());
    }

    #[test]
    fn resume_refuses_corruption_without_partial_state() {
        let cfg = quick_cfg();
        let bytes = serve_checkpoint(&cfg, Time::from_us(200));
        // bad magic
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            serve_resume(&cfg, &bad),
            Err(RestoreError::BadMagic)
        ));
        // future version
        let mut bad = bytes.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(matches!(
            serve_resume(&cfg, &bad),
            Err(RestoreError::FutureVersion { .. })
        ));
        // flip one payload bit in every section: checksum verification
        // must refuse each before anything restores
        let file = SnapshotFile::parse(&bytes).unwrap();
        let cuts: Vec<(String, usize)> = file
            .sections()
            .map(|s| (s.name.clone(), s.offset as usize))
            .collect();
        for (name, offset) in cuts {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x01;
            match serve_resume(&cfg, &bad) {
                Err(RestoreError::BadChecksum { section, .. }) => assert_eq!(section, name),
                other => panic!("corrupt `{name}` gave {other:?}"),
            }
        }
        // truncation
        assert!(matches!(
            serve_resume(&cfg, &bytes[..bytes.len() / 2]),
            Err(RestoreError::Truncated { .. }) | Err(RestoreError::Malformed { .. })
        ));
        // a different config must be refused by the meta section
        let mut other = quick_cfg();
        other.spec.tenants = 3;
        assert!(matches!(
            serve_resume(&other, &bytes),
            Err(RestoreError::Malformed { .. })
        ));
    }

    #[test]
    fn migration_moves_tenants_with_zero_lost_requests() {
        let mut cfg = quick_cfg();
        cfg.cells = 2;
        cfg.faults = CampaignSpec::parse("seed=5,seu=150us,smmu=0.002,scrub=300us").unwrap();
        let bytes = serve_checkpoint(&cfg, Time::from_us(250));
        let mut cp = CheckPlane::enabled(1);
        let out = serve_migrate_with(&cfg, &bytes, 0, &mut cp).expect("migrate");
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(out.lost, 0, "migration must not lose accepted work");
        assert!(
            out.serving.conserved(),
            "conservation holds across the move"
        );
        assert!(out.serving.completed() > 0);
        // out-of-range victim is a typed refusal
        assert!(matches!(
            serve_migrate(&cfg, &bytes, 99),
            Err(RestoreError::Malformed { .. })
        ));
    }

    #[test]
    fn telemetry_series_rolls_windows_and_conserves() {
        let mut cfg = quick_cfg();
        cfg.telemetry = Some(TelemetryConfig::new(Duration::from_us(50)));
        let mut cp = CheckPlane::enabled(1);
        let out = run_serve_sim_with(&cfg, &mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        let t = out.telemetry.expect("telemetry armed");
        assert!(t.series.rolled() > 0, "horizon spans several windows");
        assert_eq!(
            t.series.lifetime("serve.submitted"),
            out.serving.submitted(),
            "series lifetime total matches the serving ledger"
        );
        assert_eq!(t.flights.len(), 1);
        assert!(!t.fired(), "a clean in-SLO run latches no trigger");
        let parsed = json::parse(&t.to_json()).unwrap();
        assert!(parsed
            .get("series")
            .and_then(|s| s.get("windows"))
            .is_some());
        assert!(parsed.get("flights").is_some());
        // disabled telemetry costs nothing and exports nothing
        let off = run_serve_sim(&quick_cfg());
        assert!(off.telemetry.is_none());
    }

    #[test]
    fn telemetry_checkpoint_resume_is_bit_identical() {
        let mut cfg = quick_cfg();
        cfg.cells = 2;
        cfg.telemetry = Some(TelemetryConfig::new(Duration::from_us(50)));
        let full = run_serve_sim(&cfg);
        let ft = full.telemetry.as_ref().expect("telemetry armed");
        for at_us in [0u64, 120, 250] {
            let bytes = serve_checkpoint(&cfg, Time::from_us(at_us));
            let resumed = serve_resume(&cfg, &bytes).expect("resume");
            let rt = resumed.telemetry.as_ref().expect("telemetry armed");
            assert_eq!(rt.to_json(), ft.to_json(), "at {at_us}us");
            assert_eq!(rt.flight_dump_json(8), ft.flight_dump_json(8));
        }
        // a telemetry-config mismatch is refused by the meta section
        let bytes = serve_checkpoint(&cfg, Time::from_us(120));
        let mut off = cfg.clone();
        off.telemetry = None;
        assert!(matches!(
            serve_resume(&off, &bytes),
            Err(RestoreError::Malformed { .. })
        ));
    }

    #[test]
    fn slo_breach_fires_the_flight_recorder() {
        // an unmeetable deadline: every window's p99 breaches, so the
        // recorder must latch and the dump must name concrete journeys
        let spec =
            ServeSpec::parse("seed=21,tenants=4,rate=100000,horizon=500us,batch=4,deadline=1us")
                .unwrap();
        let mut cfg = ServeSimConfig::new(spec, linear_test_mix());
        cfg.telemetry = Some(TelemetryConfig::new(Duration::from_us(50)));
        let out = run_serve_sim(&cfg);
        let t = out.telemetry.expect("telemetry armed");
        assert!(t.fired(), "breached SLO must latch a trigger");
        let first = t.first_trigger().expect("trigger");
        assert_eq!(first.reason, "slo_breach");
        assert!(
            t.flights[0].events().count() > 0,
            "exemplar journeys ride in the event ring"
        );
        let parsed = json::parse(&t.flight_dump_json(8)).unwrap();
        assert!(
            parsed
                .get("triggers_fired")
                .and_then(|v| v.as_f64())
                .unwrap()
                >= 1.0
        );
        assert!(parsed.get("series_tail").and_then(|v| v.as_arr()).is_some());
    }

    #[test]
    fn faulted_campaign_sheds_but_never_loses() {
        let mut cfg = quick_cfg();
        cfg.faults = CampaignSpec::parse("seed=5,seu=200us,smmu=0.002,scrub=400us").unwrap();
        cfg.resilience = ResilienceConfig::full();
        let mut cp = CheckPlane::enabled(1);
        let out = run_serve_sim_with(&cfg, &mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(out.lost, 0, "resilience must not drop accepted work");
        assert!(out.serving.conserved(), "conservation holds under faults");
        assert!(out.serving.completed() > 0, "the system must not stall");
    }
}
