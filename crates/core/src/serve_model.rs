//! Driving an [`EcoscaleSystem`] from the ServePlane: open-loop
//! multi-tenant serving over the shared accelerators.
//!
//! `runtime::serve` owns the traffic side — workload generation,
//! admission, batching, SLO accounting. This module is the backend glue:
//! it partitions the spec's tenants across **serving cells** (one
//! [`EcoscaleSystem`] each, run concurrently via
//! [`ecoscale_sim::pool::parallel_map`] with results
//! merged in cell order, so exports are byte-identical at any
//! `ECOSCALE_THREADS`), and inside each cell runs the serving event
//! loop:
//!
//! 1. retire due completions into the plane's SLO ledger,
//! 2. generate/admit arrivals up to the current instant,
//! 3. on each cadence tick: [`EcoscaleSystem::fault_tick`] +
//!    [`EcoscaleSystem::daemon_tick`], feed resilience pressure back
//!    into admission, and check the `serve.*` CheckPlane invariants,
//! 4. dispatch ripe batches onto free worker lanes as single
//!    [`EcoscaleSystem::call`]s whose argument sizes scale with the
//!    batch (one per-dispatch overhead amortized over the whole batch),
//! 5. advance virtual time to the next arrival / completion / ripe
//!    dispatch / cadence tick.
//!
//! Under a FaultPlane campaign the system sheds load instead of
//! stalling: fresh resilience activity halves the admission queue bound
//! for the next window, and SEU fallbacks slow (but never drop) the
//! batches in flight. Every request stays accounted — the
//! `serve.request_conserved` invariant holds at every tick and at drain.

use std::collections::HashMap;

use ecoscale_hls::KernelArgs;
use ecoscale_noc::NodeId;
use ecoscale_runtime::serve::{Batch, ServePlane, ServeSpec, ServingReport};
use ecoscale_runtime::ResilienceConfig;
use ecoscale_sim::check::CheckPlane;
use ecoscale_sim::{pool, CampaignSpec, Duration, MetricsRegistry, Time};

use crate::report::SystemReport;
use crate::system::{EcoscaleSystem, SystemBuilder};

/// One entry of a serving kernel mix: the HLS source to register at
/// build time plus a binder that materializes arguments for a given
/// total item count (a batch of `k` requests binds `k × items_per_req`
/// items, which is what makes batching amortize the per-dispatch
/// overhead — valid for item-linear kernels only).
#[derive(Debug, Clone)]
pub struct ServeKernel {
    /// Function name (must match the kernel source's name).
    pub name: &'static str,
    /// HLS kernel source registered with the [`SystemBuilder`].
    pub source: &'static str,
    /// Build-time scalar hints (trip-count resolution for synthesis).
    pub hints: HashMap<String, f64>,
    /// Binds arguments for `total_items` items. Must be deterministic.
    pub bind: fn(usize) -> KernelArgs,
}

/// Configuration of one serving simulation.
#[derive(Debug, Clone)]
pub struct ServeSimConfig {
    /// The serving workload and policy.
    pub spec: ServeSpec,
    /// The kernel mix tenants draw requests from (non-empty).
    pub kernels: Vec<ServeKernel>,
    /// Items per request (batch of `k` binds `k * items`).
    pub items: usize,
    /// Workers per Compute Node in each cell's system.
    pub workers_per_node: usize,
    /// Compute Nodes in each cell's system.
    pub compute_nodes: usize,
    /// Serving cells: independent systems the tenants are partitioned
    /// over round-robin (clamped to the tenant count).
    pub cells: usize,
    /// Maintenance cadence: fault/daemon ticks, pressure refresh and
    /// invariant checks fire every `cadence` of serving time.
    pub cadence: Duration,
    /// Fault campaign injected into every cell ([`CampaignSpec::off`]
    /// for a clean run).
    pub faults: CampaignSpec,
    /// Recovery policy when the campaign is active.
    pub resilience: ResilienceConfig,
}

impl ServeSimConfig {
    /// A config serving `spec` over `kernels` with the default backend
    /// shape: one cell of 2×2 workers, 50 us cadence, 96-item requests,
    /// no faults.
    pub fn new(spec: ServeSpec, kernels: Vec<ServeKernel>) -> ServeSimConfig {
        ServeSimConfig {
            spec,
            kernels,
            items: 96,
            workers_per_node: 2,
            compute_nodes: 2,
            cells: 1,
            cadence: Duration::from_us(50),
            faults: CampaignSpec::off(),
            resilience: ResilienceConfig::full(),
        }
    }
}

/// What one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The merged SLO ledger across all cells.
    pub serving: ServingReport,
    /// Every cell's instruments (system layers + `serve.*`), merged in
    /// cell order.
    pub metrics: MetricsRegistry,
    /// Cell 0's system snapshot carrying the merged `serving` section
    /// and the merged metrics.
    pub report: SystemReport,
    /// Serving time from first arrival opportunity to full drain (the
    /// slowest cell).
    pub makespan: Duration,
    /// SEU software fallbacks across cells (resilience activity).
    pub fallbacks: u64,
    /// Requests the resilience layer lost across cells (must stay 0:
    /// ServePlane sheds at admission, it never drops accepted work).
    pub lost: u64,
    /// Invariant checks run across all cells' serve planes.
    pub checks_run: u64,
    /// Invariant violations across all cells (0 on a healthy run).
    pub violations: u64,
}

struct CellResult {
    serving: ServingReport,
    metrics: MetricsRegistry,
    report: SystemReport,
    drained_at: Time,
    fallbacks: u64,
    lost: u64,
    cp: CheckPlane,
}

/// Runs the serving simulation, arming the CheckPlane from
/// `ECOSCALE_CHECK`.
pub fn run_serve_sim(cfg: &ServeSimConfig) -> ServeOutcome {
    let mut cp = CheckPlane::from_env();
    run_serve_sim_with(cfg, &mut cp)
}

/// Runs the serving simulation, absorbing every cell's invariant
/// tallies into `cp`. (Cells always check their own planes at cadence
/// 1; `cp` only controls aggregation.)
///
/// # Panics
///
/// Panics on an empty kernel mix, a zero cadence, or an unbuildable
/// system config.
pub fn run_serve_sim_with(cfg: &ServeSimConfig, cp: &mut CheckPlane) -> ServeOutcome {
    assert!(!cfg.kernels.is_empty(), "serving needs a kernel mix");
    assert!(!cfg.cadence.is_zero(), "cadence must be > 0");
    let cells = cfg.cells.clamp(1, cfg.spec.tenants);
    let partitions: Vec<Vec<u32>> = (0..cells)
        .map(|c| {
            (0..cfg.spec.tenants as u32)
                .filter(|t| *t as usize % cells == c)
                .collect()
        })
        .collect();

    let results = pool::parallel_map(partitions, |ids| run_cell(cfg, ids));

    let mut iter = results.into_iter();
    let first = iter.next().expect("at least one cell");
    let mut serving = first.serving;
    let mut metrics = first.metrics;
    let mut report = first.report;
    let mut drained_at = first.drained_at;
    let mut fallbacks = first.fallbacks;
    let mut lost = first.lost;
    let mut checks_run = first.cp.checks_run();
    let mut violations = first.cp.violation_count();
    cp.absorb(&first.cp);
    for cell in iter {
        serving.merge(&cell.serving);
        metrics.merge(&cell.metrics);
        drained_at = drained_at.max(cell.drained_at);
        fallbacks += cell.fallbacks;
        lost += cell.lost;
        checks_run += cell.cp.checks_run();
        violations += cell.cp.violation_count();
        cp.absorb(&cell.cp);
    }
    report.serving = Some(serving.clone());
    report.metrics = metrics.clone();
    ServeOutcome {
        serving,
        metrics,
        report,
        makespan: drained_at.since(Time::ZERO),
        fallbacks,
        lost,
        checks_run,
        violations,
    }
}

fn build_cell_system(cfg: &ServeSimConfig) -> EcoscaleSystem {
    let mut b = SystemBuilder::new()
        .workers_per_node(cfg.workers_per_node)
        .compute_nodes(cfg.compute_nodes);
    for k in &cfg.kernels {
        b = b.kernel(k.source, k.hints.clone());
    }
    let mut system = b.build().expect("serving kernel mix must build");
    // A serving cell provisions its mix eagerly: every lane keeps the
    // whole mix resident so steady-state requests hit the accelerator
    // path (and a fault campaign has real fabric state to upset). A
    // module that does not fit a lane's fabric is skipped — calls for
    // it fall back to software on that lane.
    for lane in 0..system.num_workers() {
        for k in &cfg.kernels {
            let _ = system.load_module(NodeId(lane), k.name);
        }
    }
    system
}

fn run_cell(cfg: &ServeSimConfig, ids: Vec<u32>) -> CellResult {
    let mut system = build_cell_system(cfg);
    if !cfg.faults.is_off() {
        system.enable_faults(&cfg.faults, cfg.resilience);
    }
    let mut plane = ServePlane::for_tenants(&cfg.spec, cfg.kernels.len(), &ids);
    // the cell checks itself unconditionally; the caller's plane decides
    // whether the tallies are aggregated further
    let mut cp = CheckPlane::enabled(1);

    let lanes = system.num_workers();
    let mut free_at = vec![Time::ZERO; lanes];
    // (completion time, dispatch sequence, batch): retired in
    // (time, seq) order so completions are deterministic
    let mut in_flight: Vec<(Time, u64, Batch)> = Vec::new();
    let mut seq = 0u64;
    let mut now = Time::ZERO;
    let mut next_tick = Time::ZERO + cfg.cadence;
    let mut last_resil = 0u64;

    loop {
        // 1. retire completions due
        if in_flight.iter().any(|(t, _, _)| *t <= now) {
            let mut due: Vec<(Time, u64, Batch)> = Vec::new();
            in_flight.retain_mut(|entry| {
                if entry.0 <= now {
                    let batch = Batch {
                        kernel: entry.2.kernel,
                        requests: std::mem::take(&mut entry.2.requests),
                    };
                    due.push((entry.0, entry.1, batch));
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|(t, s, _)| (*t, *s));
            for (t, _, b) in &due {
                plane.complete_batch(b, *t);
            }
        }

        // 2. arrivals up to now
        plane.pop_arrivals(now);

        // 3. cadence maintenance (the advance step lands exactly on
        // tick boundaries while work remains)
        while next_tick <= now {
            system.fault_tick();
            system.daemon_tick();
            let resil = system
                .resilience()
                .map(|r| r.failures() + r.fallbacks() + r.quarantines())
                .unwrap_or(0);
            plane.set_pressure(resil > last_resil);
            last_resil = resil;
            plane.check_invariants(&mut cp);
            next_tick += cfg.cadence;
        }

        // 4. dispatch ripe batches onto free lanes
        while plane.dispatch_ready(now) {
            let lane = match (0..lanes).find(|&l| free_at[l] <= now) {
                Some(l) => l,
                None => break,
            };
            let batch = plane.take_batch(now).expect("ready implies queued");
            let kernel = &cfg.kernels[batch.kernel as usize];
            let mut args = (kernel.bind)(cfg.items * batch.len());
            match system.call(NodeId(lane), kernel.name, &mut args) {
                Ok(out) => {
                    let done = now + cfg.spec.overhead + out.latency;
                    free_at[lane] = done;
                    in_flight.push((done, seq, batch));
                    seq += 1;
                }
                Err(_) => plane.fail_batch(&batch),
            }
        }

        // 5. advance to the next interesting instant
        let mut next: Option<Time> = None;
        let mut fold = |t: Time| next = Some(next.map_or(t, |n: Time| n.min(t)));
        if let Some(a) = plane.next_arrival() {
            fold(a);
        }
        for (t, _, _) in &in_flight {
            fold(*t);
        }
        if plane.queued() > 0 {
            let ripe = plane.ripe_at(now).expect("queued");
            let lane = free_at.iter().copied().min().expect("lanes");
            fold(ripe.max(lane));
        }
        match next {
            // while work remains, maintenance keeps firing on cadence
            Some(t) => {
                let t = t.min(next_tick);
                now = if t > now {
                    t
                } else {
                    Time::from_ps(now.as_ps() + 1)
                };
            }
            None => break,
        }
    }

    debug_assert!(plane.drained());
    plane.check_invariants(&mut cp);

    let mut metrics = system.export_metrics();
    plane.export_metrics(&mut metrics);
    let (fallbacks, lost) = system
        .resilience()
        .map(|r| (r.fallbacks(), r.lost()))
        .unwrap_or((0, 0));
    let mut report = SystemReport::capture(&system);
    let serving = plane.report();
    report.serving = Some(serving.clone());
    CellResult {
        serving,
        metrics,
        report,
        drained_at: now,
        fallbacks,
        lost,
        cp,
    }
}

/// Convenience: builds a scalar-hint map for a [`ServeKernel`].
pub fn serve_hints(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
    pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
}

/// A minimal item-linear mix for tests and smoke runs that cannot see
/// the `apps` crate (which hosts the full mix in `apps::mix`).
pub fn linear_test_mix() -> Vec<ServeKernel> {
    fn bind_saxpy(n: usize) -> KernelArgs {
        let mut a = KernelArgs::new();
        a.bind_array("x", (0..n).map(|i| i as f64 * 0.5).collect())
            .bind_array("y", (0..n).map(|i| (i % 7) as f64).collect())
            .bind_array("z", vec![0.0; n])
            .bind_scalar("a", 3.0)
            .bind_scalar("n", n as f64);
        a
    }
    fn bind_smooth(n: usize) -> KernelArgs {
        let mut a = KernelArgs::new();
        a.bind_array("x", (0..n + 2).map(|i| (i % 11) as f64).collect())
            .bind_array("y", vec![0.0; n])
            .bind_scalar("n", n as f64);
        a
    }
    vec![
        ServeKernel {
            name: "saxpy",
            source: "kernel saxpy(in float x[], in float y[], out float z[], float a, int n) {
                for (i in 0 .. n) { z[i] = a * x[i] + y[i]; }
            }",
            hints: serve_hints(&[("a", 3.0), ("n", 96.0)]),
            bind: bind_saxpy,
        },
        ServeKernel {
            name: "smooth",
            source: "kernel smooth(in float x[], out float y[], int n) {
                for (i in 0 .. n) { y[i] = 0.25 * x[i] + 0.5 * x[i + 1] + 0.25 * x[i + 2]; }
            }",
            hints: serve_hints(&[("n", 96.0)]),
            bind: bind_smooth,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_sim::json;

    fn quick_cfg() -> ServeSimConfig {
        let spec =
            ServeSpec::parse("seed=21,tenants=4,rate=100000,horizon=500us,batch=4,deadline=200us")
                .unwrap();
        ServeSimConfig::new(spec, linear_test_mix())
    }

    #[test]
    fn clean_run_conserves_and_completes() {
        let cfg = quick_cfg();
        let mut cp = CheckPlane::enabled(1);
        let out = run_serve_sim_with(&cfg, &mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(out.violations, 0);
        assert!(out.checks_run > 0);
        assert!(out.serving.conserved(), "drained run conserves requests");
        assert!(out.serving.completed() > 0);
        assert_eq!(out.lost, 0);
        assert!(out.makespan >= cfg.spec.horizon);
        // metrics carry both the system layers and the serve plane
        assert!(out.metrics.counter("serve.submitted").unwrap() > 0);
        assert!(out.metrics.counter("system.calls_cpu").is_some());
        // the report embeds the serving section
        let serving = out.report.serving.as_ref().expect("serving section");
        assert_eq!(serving.completed(), out.serving.completed());
        let parsed = json::parse(&out.report.to_json()).unwrap();
        assert!(parsed
            .get("serving")
            .and_then(|s| s.get("completed"))
            .is_some());
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = quick_cfg();
        let a = run_serve_sim(&cfg);
        let b = run_serve_sim(&cfg);
        assert_eq!(a.serving, b.serving);
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn cells_partition_tenants_without_losing_traffic() {
        let cfg = quick_cfg();
        let mut split = quick_cfg();
        split.cells = 2;
        let whole = run_serve_sim(&cfg);
        let split = run_serve_sim(&split);
        // per-tenant arrival streams are salted by global id: the
        // submitted totals agree regardless of the partition
        assert_eq!(whole.serving.submitted(), split.serving.submitted());
        assert_eq!(split.serving.tenants.len(), 4);
        assert!(split.serving.conserved());
        // cells clamp to the tenant count
        let mut over = quick_cfg();
        over.cells = 64;
        let over = run_serve_sim(&over);
        assert!(over.serving.conserved());
    }

    #[test]
    fn batching_on_beats_batching_off_on_goodput() {
        // saturating load: per-dispatch overhead dominates unbatched
        // service, so coalescing buys real capacity
        let spec = ServeSpec::parse(
            "seed=33,tenants=4,rate=350000,horizon=1ms,batch=8,deadline=300us,queue=32",
        )
        .unwrap();
        let mut on = ServeSimConfig::new(spec.clone(), linear_test_mix());
        on.items = 32;
        let mut off = on.clone();
        off.spec = spec.batching_off();
        let on = run_serve_sim(&on);
        let off = run_serve_sim(&off);
        assert!(on.serving.conserved() && off.serving.conserved());
        assert!(
            on.serving.goodput() > off.serving.goodput(),
            "batching on {} must beat off {}",
            on.serving.goodput(),
            off.serving.goodput()
        );
    }

    #[test]
    fn faulted_campaign_sheds_but_never_loses() {
        let mut cfg = quick_cfg();
        cfg.faults = CampaignSpec::parse("seed=5,seu=200us,smmu=0.002,scrub=400us").unwrap();
        cfg.resilience = ResilienceConfig::full();
        let mut cp = CheckPlane::enabled(1);
        let out = run_serve_sim_with(&cfg, &mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(out.lost, 0, "resilience must not drop accepted work");
        assert!(out.serving.conserved(), "conservation holds under faults");
        assert!(out.serving.completed() > 0, "the system must not stall");
    }
}
