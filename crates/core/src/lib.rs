//! The ECOSCALE system: the paper's primary contribution, assembled.
//!
//! An [`EcoscaleSystem`] is a hierarchy of Compute Nodes, each a PGAS
//! sub-system of Workers (CPU + reconfigurable block + DRAM, Fig. 4),
//! joined by a multi-layer tree interconnect (Fig. 3). On top of the
//! substrate crates this crate adds what UNILOGIC is actually *for*:
//!
//! * [`worker`] — the Worker: CPU model, dual-stage SMMU, reconfigurable
//!   block managed by its runtime daemon,
//! * [`system`] — the builder and the end-to-end `call` path: device
//!   selection → functional execution → cost accounting → history update,
//! * [`unilogic`] — the four ways to reach an accelerator (local cached,
//!   remote uncached load/store, DMA offload, software) and their costs,
//! * [`virtblock`] — the Virtualization block: many callers sharing one
//!   fully-pipelined accelerator vs exclusive time multiplexing,
//! * [`chain`] — accelerator chaining: "different accelerator modules
//!   \[chained\] for building longer complex processing pipelines …
//!   substantial energy savings" (§4.3),
//! * [`power`] — the exaflop power extrapolations from the introduction,
//! * [`shard_model`] — the cluster-partitioned model driven by the
//!   conservative-parallel sharded engine (one UNIMEM + NoC + trace per
//!   Compute Node, NoC-lookahead synchronization),
//! * [`serve_model`] — the ServePlane backend: multi-tenant open-loop
//!   serving cells driving `EcoscaleSystem::call` with batching,
//!   admission backpressure and SLO accounting.

pub mod chain;
pub mod power;
pub mod report;
pub mod serve_model;
pub mod shard_model;
pub mod system;
pub mod unilogic;
pub mod virtblock;
pub mod worker;

pub use chain::{Chain, ChainCost};
pub use power::{machine_power_for_exaflop, MachineClass, PowerBreakdown};
pub use report::{FunctionSummary, SystemReport};
pub use serve_model::{
    linear_test_mix, run_serve_sim, run_serve_sim_with, serve_checkpoint, serve_hints,
    serve_migrate, serve_migrate_with, serve_resume, serve_resume_with, CellSim, ServeKernel,
    ServeOutcome, ServeSimConfig, ServeTelemetry,
};
pub use shard_model::{
    run_shard_sim, run_shard_sim_observed, run_shard_sim_with, ClusterEv, ClusterSimModel,
    ShardOutcome, ShardSimConfig, OCCUPANCY_WIDTHS,
};
pub use system::{CallOutcome, EcoscaleSystem, SystemBuilder};
pub use unilogic::{AccessPath, PathCost, UnilogicModel};
pub use virtblock::{SharingMode, VirtualizationBlock};
pub use worker::Worker;
