//! The assembled ECOSCALE system and its end-to-end call path.
//!
//! [`SystemBuilder`] wires the substrate together: a tree of Compute
//! Nodes and Workers (Fig. 3), UNIMEM across all partitions, one module
//! library synthesized from the registered kernels, and a runtime daemon
//! per Worker. [`EcoscaleSystem::call`] is the whole paper in one
//! function: the per-worker scheduler consults the execution history and
//! its prediction models, picks CPU / local accelerator / remote
//! accelerator (UNILOGIC), *functionally executes* the kernel so results
//! are real, charges the path's simulated cost, and feeds the outcome
//! back into the history that the reconfiguration daemon reads.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ecoscale_fpga::{Resources, SeuScrubber};
use ecoscale_hls::{
    parse_kernel, ExecKernelError, KernelAnalysis, KernelArgs, ModuleLibrary, ParseKernelError,
};
use ecoscale_mem::{CacheConfig, DramModel, UnimemSystem};
use ecoscale_noc::{Network, NetworkConfig, NodeId, Topology, TreeTopology};
use ecoscale_runtime::{DeviceClass, Domain, ReconfigError, ResilienceConfig, ResilienceManager};
use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::{
    fault::salt, CampaignSpec, Counter, Duration, Energy, Histogram, MetricsRegistry, Time, Tracer,
    TrackId,
};

use crate::unilogic::{AccessPath, UnilogicModel};
use crate::worker::Worker;

/// Errors building a system.
#[derive(Debug)]
pub enum BuildSystemError {
    /// A registered kernel failed to parse.
    Parse(ParseKernelError),
    /// HLS could not estimate a kernel (e.g. unresolved trip counts).
    Estimate(ecoscale_hls::EstimateError),
}

impl fmt::Display for BuildSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSystemError::Parse(e) => write!(f, "kernel parse failed: {e}"),
            BuildSystemError::Estimate(e) => write!(f, "kernel estimation failed: {e}"),
        }
    }
}

impl Error for BuildSystemError {}

impl From<ParseKernelError> for BuildSystemError {
    fn from(e: ParseKernelError) -> Self {
        BuildSystemError::Parse(e)
    }
}

impl From<ecoscale_hls::EstimateError> for BuildSystemError {
    fn from(e: ecoscale_hls::EstimateError) -> Self {
        BuildSystemError::Estimate(e)
    }
}

/// Errors from one call.
#[derive(Debug)]
pub enum CallError {
    /// No registered kernel has this name.
    UnknownFunction {
        /// The requested name.
        name: String,
    },
    /// The functional execution failed.
    Exec(ExecKernelError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            CallError::Exec(e) => write!(f, "kernel execution failed: {e}"),
        }
    }
}

impl Error for CallError {}

impl From<ExecKernelError> for CallError {
    fn from(e: ExecKernelError) -> Self {
        CallError::Exec(e)
    }
}

/// What one call produced (besides its array results, which land in the
/// caller's [`KernelArgs`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallOutcome {
    /// Where the call ran.
    pub device: DeviceClass,
    /// Which Worker's accelerator served it (for the FPGA paths).
    pub served_by: NodeId,
    /// Call latency.
    pub latency: Duration,
    /// Call energy.
    pub energy: Energy,
    /// System time when the call completed.
    pub completed_at: Time,
}

/// Builder for [`EcoscaleSystem`].
///
/// # Example
///
/// ```
/// use ecoscale_core::SystemBuilder;
/// use std::collections::HashMap;
///
/// let system = SystemBuilder::new()
///     .workers_per_node(4)
///     .compute_nodes(2)
///     .kernel(
///         "kernel scale(in float a[], out float b[], int n) {
///              for (i in 0 .. n) { b[i] = 2.0 * a[i]; }
///          }",
///         HashMap::from([("n".to_string(), 4096.0)]),
///     )
///     .build()?;
/// assert_eq!(system.num_workers(), 8);
/// # Ok::<(), ecoscale_core::system::BuildSystemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    workers_per_node: usize,
    compute_nodes: usize,
    fabric_cols: u32,
    fabric_rows: u32,
    hls_budget: Resources,
    kernels: Vec<(String, HashMap<String, f64>)>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            workers_per_node: 4,
            compute_nodes: 4,
            // roomy enough for two default-budget modules side by side
            fabric_cols: 72,
            fabric_rows: 80,
            hls_budget: Resources::new(2000, 64, 64),
            kernels: Vec::new(),
        }
    }
}

impl SystemBuilder {
    /// Creates a builder with defaults (4×4 Workers, 40×60 fabric).
    pub fn new() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Workers per Compute Node.
    ///
    /// # Panics
    ///
    /// Panics if below 2 (the tree needs a fanout of at least 2).
    pub fn workers_per_node(mut self, n: usize) -> SystemBuilder {
        assert!(n >= 2, "need at least 2 workers per node");
        self.workers_per_node = n;
        self
    }

    /// Number of Compute Nodes.
    ///
    /// # Panics
    ///
    /// Panics if below 2.
    pub fn compute_nodes(mut self, n: usize) -> SystemBuilder {
        assert!(n >= 2, "need at least 2 compute nodes");
        self.compute_nodes = n;
        self
    }

    /// Reconfigurable-block geometry per Worker.
    pub fn fabric(mut self, cols: u32, rows: u32) -> SystemBuilder {
        self.fabric_cols = cols;
        self.fabric_rows = rows;
        self
    }

    /// HLS resource budget per module.
    pub fn hls_budget(mut self, budget: Resources) -> SystemBuilder {
        self.hls_budget = budget;
        self
    }

    /// Registers a kernel (source + scalar hints for HLS).
    pub fn kernel(mut self, source: &str, hints: HashMap<String, f64>) -> SystemBuilder {
        self.kernels.push((source.to_owned(), hints));
        self
    }

    /// Builds the system: parses and synthesizes every kernel, then
    /// assembles Workers, interconnect and UNIMEM.
    ///
    /// # Errors
    ///
    /// [`BuildSystemError`] on parse or estimation failures.
    pub fn build(self) -> Result<EcoscaleSystem, BuildSystemError> {
        let mut parsed = Vec::new();
        for (src, hints) in &self.kernels {
            parsed.push((parse_kernel(src)?, hints.clone()));
        }
        let library = ModuleLibrary::synthesize(&parsed, self.hls_budget)?;
        let topo = TreeTopology::new(&[self.workers_per_node, self.compute_nodes]);
        let n = topo.num_nodes();
        let workers = (0..n)
            .map(|i| Worker::new(NodeId(i), self.fabric_cols, self.fabric_rows))
            .collect();
        Ok(EcoscaleSystem {
            workers,
            net: Network::new(topo, NetworkConfig::default()),
            mem: UnimemSystem::new(n, CacheConfig::l1_default(), DramModel::default()),
            library,
            kernels: parsed
                .into_iter()
                .map(|(k, _)| (k.name().to_owned(), k))
                .collect(),
            unilogic: UnilogicModel::default(),
            clock: Time::ZERO,
            energy: Energy::ZERO,
            tracer: Tracer::disabled(),
            worker_tracks: Vec::new(),
            fabric_tracks: Vec::new(),
            call_ns: Histogram::new(),
            calls_cpu: Counter::new(),
            calls_fpga_local: Counter::new(),
            calls_fpga_remote: Counter::new(),
            faults: None,
            check: CheckPlane::from_env(),
        })
    }
}

/// The FaultPlane's system-level state: per-fabric SEU scrubbers plus
/// the resilience manager driving repair and fallback decisions.
#[derive(Debug)]
struct SystemFaults {
    scrubbers: Vec<SeuScrubber>,
    mgr: ResilienceManager,
}

/// The assembled system.
#[derive(Debug)]
pub struct EcoscaleSystem {
    workers: Vec<Worker>,
    net: Network<TreeTopology>,
    mem: UnimemSystem,
    library: ModuleLibrary,
    kernels: HashMap<String, ecoscale_hls::Kernel>,
    unilogic: UnilogicModel,
    clock: Time,
    energy: Energy,
    tracer: Tracer,
    worker_tracks: Vec<TrackId>,
    fabric_tracks: Vec<TrackId>,
    call_ns: Histogram,
    calls_cpu: Counter,
    calls_fpga_local: Counter,
    calls_fpga_remote: Counter,
    faults: Option<SystemFaults>,
    check: CheckPlane,
}

impl EcoscaleSystem {
    /// Number of Workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The Worker at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn worker(&self, id: NodeId) -> &Worker {
        &self.workers[id.0]
    }

    /// Mutable Worker access.
    pub fn worker_mut(&mut self, id: NodeId) -> &mut Worker {
        &mut self.workers[id.0]
    }

    /// The synthesized module library.
    pub fn library(&self) -> &ModuleLibrary {
        &self.library
    }

    /// The UNIMEM system.
    pub fn mem_mut(&mut self) -> &mut UnimemSystem {
        &mut self.mem
    }

    /// The interconnect.
    pub fn net_mut(&mut self) -> &mut Network<TreeTopology> {
        &mut self.net
    }

    /// Current system time.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Total energy charged so far.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Installs a tracer: calls become spans on per-worker `w<N>/calls`
    /// tracks and partial reconfigurations become spans on `w<N>/fabric`
    /// tracks. The interconnect's per-link tracks share the same
    /// buffer. The default tracer is disabled and costs one branch per
    /// recording site.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        self.net.set_tracer(tracer.clone());
        self.worker_tracks = self
            .workers
            .iter()
            .map(|w| tracer.track(&format!("w{}/calls", w.id().0)))
            .collect();
        self.fabric_tracks = self
            .workers
            .iter()
            .map(|w| tracer.track(&format!("w{}/fabric", w.id().0)))
            .collect();
    }

    /// The installed tracer (disabled unless
    /// [`EcoscaleSystem::set_tracer`] was called). Post-hoc analyses
    /// snapshot its buffer without draining it.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshots every layer's instruments into one registry:
    /// `smmu.*` and `reconfig.*` aggregated across Workers, `unimem.*`,
    /// `noc.*`, and the system-level `system.*` call metrics (per-device
    /// call counters, call-latency histogram, fabric occupancy stats).
    pub fn export_metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for w in &self.workers {
            w.smmu().export_metrics(&mut m, "smmu");
            w.daemon().stats().export_metrics(&mut m, "reconfig");
        }
        self.mem.export_metrics(&mut m, "unimem");
        self.net.export_metrics(&mut m, "noc");
        m.add("system.calls_cpu", self.calls_cpu.get());
        m.add("system.calls_fpga_local", self.calls_fpga_local.get());
        m.add("system.calls_fpga_remote", self.calls_fpga_remote.get());
        m.merge_hist("system.call_ns", &self.call_ns);
        for w in &self.workers {
            m.observe(
                "system.fabric_utilization",
                w.daemon().floorplan().utilization(),
            );
        }
        m.observe("system.energy_uj", self.energy.as_uj());
        if let Some(f) = &self.faults {
            for s in &f.scrubbers {
                s.export_metrics(&mut m, "seu");
            }
            f.mgr.export_metrics(&mut m, "resilience");
        }
        m
    }

    /// CheckPlane hook: verifies the whole stack's structural invariants in
    /// one read-only pass — clock and energy monotonicity (against the
    /// plane's high-watermarks), every Worker's SMMU translation caches and
    /// fabric residency, golden-bitstream availability for each resident
    /// module, SEU-scrubber bookkeeping, the NoC's memo/accounting and
    /// UNIMEM's single-home directory. Early-outs when `cp` is disabled.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        cp.check_monotone(invariant::SYSTEM_TIME_MONOTONE, self.clock.as_ps() as f64);
        cp.check_monotone(invariant::SYSTEM_ENERGY_MONOTONE, self.energy.as_uj());
        for w in &self.workers {
            w.smmu().check_invariants(cp);
            w.daemon().check_invariants(cp);
            for module in w.loaded_modules() {
                cp.check(
                    invariant::FABRIC_GOLDEN_BITSTREAM,
                    self.library.by_id(module).is_some(),
                    || format!("resident module {module} has no library bitstream"),
                );
            }
        }
        if let Some(f) = &self.faults {
            for s in &f.scrubbers {
                s.check_invariants(cp);
            }
        }
        self.net.check_invariants(cp);
        self.mem.check_invariants(cp);
    }

    /// A [`ShardSimConfig`](crate::shard_model::ShardSimConfig) matching
    /// this system's shape: one cluster per Compute Node, this system's
    /// Workers per cluster, `tasks_per_cluster` tasks each, seeded from
    /// `seed`.
    pub fn shard_sim_config(
        &self,
        tasks_per_cluster: usize,
        seed: u64,
    ) -> crate::shard_model::ShardSimConfig {
        let fanouts = self.net.topology().fanouts();
        let mut cfg = crate::shard_model::ShardSimConfig::new(fanouts[1], fanouts[0]);
        cfg.tasks_per_cluster = tasks_per_cluster;
        cfg.seed = seed;
        cfg
    }

    /// Runs a cluster-partitioned simulation of this system's shape on
    /// the sharded engine (`ECOSCALE_SHARDS` threads). See
    /// [`run_shard_sim`](crate::shard_model::run_shard_sim).
    pub fn run_sharded(
        &self,
        tasks_per_cluster: usize,
        seed: u64,
    ) -> crate::shard_model::ShardOutcome {
        crate::shard_model::run_shard_sim(&self.shard_sim_config(tasks_per_cluster, seed))
    }

    /// Loads `function`'s module onto `worker`'s fabric explicitly.
    /// Returns the reconfiguration latency.
    ///
    /// # Errors
    ///
    /// [`ReconfigError`] when the function was never synthesized or the
    /// module cannot be placed on the Worker's fabric.
    pub fn load_module(
        &mut self,
        worker: NodeId,
        function: &str,
    ) -> Result<Duration, ReconfigError> {
        let id = self
            .library
            .get(function)
            .ok_or_else(|| ReconfigError::UnknownFunction(function.to_owned()))?
            .module
            .id();
        let start = self.clock;
        let lat = self.workers[worker.0].load_module(&self.library, id)?;
        self.clock += lat;
        if let Some(&track) = self.fabric_tracks.get(worker.0) {
            self.tracer.complete(track, function, start, lat);
        }
        Ok(lat)
    }

    /// Arms the FaultPlane across every layer of this system from
    /// `spec`: SMMU translation-fault injection per Worker, NoC link
    /// degradation and packet corruption, and SEU upsets in each fabric
    /// with periodic scrubbing. `config` decides how
    /// [`EcoscaleSystem::fault_tick`] and [`EcoscaleSystem::call`]
    /// recover. An all-off spec installs nothing and the system stays
    /// bit-identical to an unarmed one.
    pub fn enable_faults(&mut self, spec: &CampaignSpec, config: ResilienceConfig) {
        if spec.is_off() {
            self.faults = None;
            return;
        }
        for (i, w) in self.workers.iter_mut().enumerate() {
            w.smmu_mut().set_fault_injection(
                spec.smmu_fault_p,
                spec.rng(salt::SMMU_FAULT ^ ((i as u64) << 32)),
            );
        }
        self.net.set_faults(spec);
        let scrubbers = (0..self.workers.len())
            .map(|i| SeuScrubber::from_campaign(spec, i as u64))
            .collect();
        self.faults = Some(SystemFaults {
            scrubbers,
            mgr: ResilienceManager::new(config),
        });
    }

    /// The resilience manager's view of the campaign so far (`None`
    /// until [`EcoscaleSystem::enable_faults`] armed a live campaign).
    pub fn resilience(&self) -> Option<&ResilienceManager> {
        self.faults.as_ref().map(|f| &f.mgr)
    }

    /// Whether `worker`'s copy of `function` is currently upset by an
    /// undetected SEU (its results would be wrong). Always `false`
    /// without an armed campaign.
    pub fn module_upset(&self, worker: NodeId, function: &str) -> bool {
        let Some(f) = &self.faults else { return false };
        let Some(entry) = self.library.get(function) else {
            return false;
        };
        f.scrubbers[worker.0].is_upset(entry.module.id())
    }

    /// Advances the FaultPlane to the current clock: draws due SEU
    /// upsets on every fabric and, when a scrub pass is due, detects
    /// them and repairs via the reconfiguration daemon (a partial
    /// bitstream reload). Persistent failers are quarantined — unloaded
    /// and left off the fabric. Returns the number of repairs performed.
    /// A no-op without an armed campaign.
    pub fn fault_tick(&mut self) -> usize {
        let Some(mut faults) = self.faults.take() else {
            return 0;
        };
        let mut repairs = 0;
        for (i, w) in self.workers.iter_mut().enumerate() {
            let scrubber = &mut faults.scrubbers[i];
            if !scrubber.is_enabled() {
                continue;
            }
            let resident: Vec<_> = w.daemon().loaded().collect();
            scrubber.advance(self.clock, &resident);
            if !scrubber.scrub_due(self.clock) {
                continue;
            }
            for (module, detect_lat) in scrubber.scrub(self.clock) {
                let domain = Domain::Module(module.0);
                faults.mgr.record_failure(domain, self.clock);
                let quarantined = faults.mgr.is_quarantined(domain);
                if quarantined || !faults.mgr.config().repair_reconfig {
                    // no repair path: drop the corrupted module; calls
                    // fall back to software until the daemon reloads it
                    w.daemon_mut().unload(module);
                    scrubber.repaired(module);
                    continue;
                }
                // repair = partial reconfiguration with a clean bitstream
                w.daemon_mut().unload(module);
                match w.daemon_mut().load(&self.library, module) {
                    Ok(lat) => {
                        let start = self.clock;
                        self.clock += lat;
                        repairs += 1;
                        faults.mgr.note_repair(lat);
                        faults.mgr.note_recovery(detect_lat + lat);
                        scrubber.repaired(module);
                        if let Some(&track) = self.fabric_tracks.get(i) {
                            self.tracer.complete(track, "seu-repair", start, lat);
                        }
                    }
                    Err(_) => {
                        // can't place it back: treat as lost capacity
                        faults.mgr.note_lost();
                        scrubber.repaired(module);
                    }
                }
            }
        }
        self.faults = Some(faults);
        repairs
    }

    /// Runs every Worker's reconfiguration daemon once; returns how many
    /// module loads happened system-wide.
    pub fn daemon_tick(&mut self) -> usize {
        let mut loads = 0;
        for (i, w) in self.workers.iter_mut().enumerate() {
            let busy_before = w.daemon().stats().busy;
            let (daemon, history) = w.daemon_and_history();
            let loaded = daemon.evaluate(self.clock, history, &self.library).len();
            loads += loaded;
            if loaded > 0 {
                if let Some(&track) = self.fabric_tracks.get(i) {
                    let spent = w.daemon().stats().busy - busy_before;
                    self.tracer
                        .complete(track, "daemon-reconfig", self.clock, spent);
                }
            }
        }
        // Self-check pass at the plane's cadence when `ECOSCALE_CHECK` is
        // armed; the take/put dance lets the hook borrow `&self` whole.
        if self.check.due() {
            let mut cp = std::mem::take(&mut self.check);
            self.check_invariants(&mut cp);
            self.check = cp;
        }
        loads
    }

    /// Serializes the system's complete mutable state: clock, energy,
    /// call accounting, every Worker (SMMU + fabric residency + history),
    /// the interconnect, UNIMEM, the FaultPlane (scrubbers + resilience
    /// manager, when armed) and the CheckPlane tallies. Build-time
    /// configuration (topology, library, cost models) and the tracer are
    /// not serialized — restore onto a system built from the same
    /// [`SystemBuilder`] inputs, with the same fault campaign armed.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        self.clock.snapshot(w);
        self.energy.snapshot(w);
        self.call_ns.snapshot(w);
        self.calls_cpu.snapshot(w);
        self.calls_fpga_local.snapshot(w);
        self.calls_fpga_remote.snapshot(w);
        w.put_usize(self.workers.len());
        for worker in &self.workers {
            worker.snapshot_state(w);
        }
        self.net.snapshot_state(w);
        self.mem.snapshot_state(w);
        w.put_bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            w.put_usize(f.scrubbers.len());
            for s in &f.scrubbers {
                s.snapshot_state(w);
            }
            f.mgr.snapshot_state(w);
        }
        self.check.snapshot(w);
    }

    /// Overlays state captured by [`EcoscaleSystem::snapshot_state`].
    /// On error this system may be partially overwritten and must be
    /// discarded — nothing observable is ever served from a partially
    /// applied snapshot.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncated or malformed data, a
    /// Worker-count mismatch, or a fault-arming mismatch (the snapshot
    /// carries an armed campaign but this system has none, or vice
    /// versa).
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        self.clock = Time::restore(r)?;
        self.energy = Energy::restore(r)?;
        self.call_ns = Histogram::restore(r)?;
        self.calls_cpu = Counter::restore(r)?;
        self.calls_fpga_local = Counter::restore(r)?;
        self.calls_fpga_remote = Counter::restore(r)?;
        let n = r.get_usize()?;
        if n != self.workers.len() {
            return Err(malformed(format!(
                "snapshot has {n} workers, this system has {}",
                self.workers.len()
            )));
        }
        for worker in &mut self.workers {
            worker.restore_state(r)?;
        }
        self.net.restore_state(r)?;
        self.mem.restore_state(r)?;
        let armed = r.get_bool()?;
        match (&mut self.faults, armed) {
            (Some(f), true) => {
                let k = r.get_usize()?;
                if k != f.scrubbers.len() {
                    return Err(malformed(format!(
                        "snapshot has {k} scrubbers, this system has {}",
                        f.scrubbers.len()
                    )));
                }
                for s in &mut f.scrubbers {
                    s.restore_state(r)?;
                }
                f.mgr.restore_state(r)?;
            }
            (None, false) => {}
            (Some(_), false) => {
                return Err(malformed(
                    "snapshot has no fault campaign but this system armed one".to_owned(),
                ));
            }
            (None, true) => {
                return Err(malformed(
                    "snapshot has an armed fault campaign but this system has none".to_owned(),
                ));
            }
        }
        self.check = ecoscale_sim::check::CheckPlane::restore(r)?;
        Ok(())
    }

    /// Finds a Worker (other than `except`) holding `function`'s module.
    fn remote_holder(&self, function: &str, except: NodeId) -> Option<NodeId> {
        let id = self.library.get(function)?.module.id();
        self.workers
            .iter()
            .filter(|w| w.id() != except && w.daemon().is_loaded(id))
            .min_by_key(|w| self.net.topology().route(except, w.id()).hop_count())
            .map(|w| w.id())
    }

    /// Calls `function` from `worker` with `args`: selects the device,
    /// executes functionally, charges costs, updates history.
    ///
    /// # Errors
    ///
    /// [`CallError`] for unknown functions or execution faults.
    pub fn call(
        &mut self,
        worker: NodeId,
        function: &str,
        args: &mut KernelArgs,
    ) -> Result<CallOutcome, CallError> {
        let kernel = self
            .kernels
            .get(function)
            .ok_or_else(|| CallError::UnknownFunction {
                name: function.to_owned(),
            })?
            .clone();

        // features and work estimate from the actual arguments
        let mut hints = HashMap::new();
        let mut features = Vec::new();
        for p in kernel.scalars() {
            if let Some(v) = args.scalar(&p.name) {
                hints.insert(p.name.clone(), v);
                features.push(v);
            }
        }
        let analysis = KernelAnalysis::analyze(&kernel, &hints);
        let total = analysis.total().copied().unwrap_or_default();
        // A software core pays ~25 cycles per transcendental (libm on an
        // A53); a pipelined datapath pays one issue slot. Weight the CPU
        // path accordingly.
        const SPECIAL_CPU_CYCLES: u64 = 25;
        let (items, hw_ops_per_item, cpu_ops_per_item, mem_per_item) = match analysis.hot_loop() {
            Some(l) => (
                l.total_iterations.unwrap_or(1).max(1),
                l.body_census.flops().max(1) as u64,
                (l.body_census.flops() as u64
                    + l.body_census.special as u64 * (SPECIAL_CPU_CYCLES - 1))
                    .max(1),
                l.body_census.mem_ops().max(1) as u64,
            ),
            None => (
                1,
                total.flops.max(1),
                (total.flops + total.special * (SPECIAL_CPU_CYCLES - 1)).max(1),
                total.mem_ops.max(1),
            ),
        };
        let bytes = total.mem_ops * 8;

        // device selection
        let entry = self.library.get(function);
        let local_loaded = entry
            .map(|e| self.workers[worker.0].daemon().is_loaded(e.module.id()))
            .unwrap_or(false);
        let remote = self.remote_holder(function, worker);
        let device = self.workers[worker.0].daemon().select_device(
            self.workers[worker.0].history(),
            function,
            &features,
            local_loaded,
            remote.is_some(),
        );
        // downgrade if the selected hardware is not actually available
        let mut device = match device {
            DeviceClass::FpgaLocal if entry.is_none() || !local_loaded => DeviceClass::Cpu,
            DeviceClass::FpgaRemote if entry.is_none() || remote.is_none() => DeviceClass::Cpu,
            d => d,
        };
        // FaultPlane: an SEU-upset module would compute garbage. With
        // software fallback the call runs on the CPU instead; without it
        // the (wrong) hardware result is still costed on the FPGA path —
        // silent data corruption, visible only through verification.
        if let Some(f) = &mut self.faults {
            if f.mgr.config().software_fallback && entry.is_some() {
                let id = entry.map(|e| e.module.id()).expect("checked");
                let serving = match device {
                    DeviceClass::FpgaLocal => Some(worker),
                    DeviceClass::FpgaRemote => remote,
                    DeviceClass::Cpu => None,
                };
                if let Some(s) = serving {
                    if f.scrubbers[s.0].is_upset(id) {
                        f.mgr.note_fallback();
                        device = DeviceClass::Cpu;
                    }
                }
            }
        }

        // functional execution: results are real regardless of device
        args.run(&kernel)?;

        // cost the chosen path
        let (path, served_by) = match device {
            DeviceClass::Cpu => (AccessPath::Software, worker),
            DeviceClass::FpgaLocal => (AccessPath::LocalCached, worker),
            DeviceClass::FpgaRemote => (AccessPath::RemoteUncached, remote.expect("checked above")),
        };
        let ops_per_item = if path == AccessPath::Software {
            cpu_ops_per_item
        } else {
            hw_ops_per_item
        };
        let module = entry.map(|e| &e.module);
        let cost = match module {
            Some(m) => self.unilogic.cost(
                self.net.topology(),
                path,
                m,
                worker,
                served_by,
                items,
                ops_per_item,
                mem_per_item,
                bytes,
            ),
            None => {
                let cpu_flops = total.flops + total.special * (SPECIAL_CPU_CYCLES - 1);
                let (t, e) = self.workers[worker.0].cpu().exec(cpu_flops, total.mem_ops);
                crate::unilogic::PathCost {
                    latency: t,
                    energy: e,
                    network_bytes: 0,
                }
            }
        };

        let started = self.clock;
        self.clock += cost.latency;
        self.energy += cost.energy;
        self.call_ns.record(cost.latency.as_ns());
        match device {
            DeviceClass::Cpu => self.calls_cpu.incr(),
            DeviceClass::FpgaLocal => self.calls_fpga_local.incr(),
            DeviceClass::FpgaRemote => self.calls_fpga_remote.incr(),
        }
        if let Some(&track) = self.worker_tracks.get(worker.0) {
            self.tracer.complete(track, function, started, cost.latency);
        }
        self.workers[worker.0].history_mut().record(
            function,
            device,
            features,
            cost.latency,
            cost.energy,
        );
        Ok(CallOutcome {
            device,
            served_by,
            latency: cost.latency,
            energy: cost.energy,
            completed_at: self.clock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: &str = "kernel scale(in float a[], out float b[], int n) {
        for (i in 0 .. n) {
            b[i] = sqrt(a[i] + 1.0) * exp(0.5 * a[i] / (a[i] + 2.0)) + log(abs(a[i]) + 1.0);
        }
    }";

    fn system() -> EcoscaleSystem {
        SystemBuilder::new()
            .workers_per_node(4)
            .compute_nodes(4)
            .kernel(SCALE, HashMap::from([("n".to_owned(), 4096.0)]))
            .build()
            .unwrap()
    }

    fn args(n: usize) -> KernelArgs {
        let mut a = KernelArgs::new();
        a.bind_array("a", (0..n).map(|i| i as f64).collect())
            .bind_array("b", vec![0.0; n])
            .bind_scalar("n", n as f64);
        a
    }

    #[test]
    fn build_shapes_system() {
        let s = system();
        assert_eq!(s.num_workers(), 16);
        assert_eq!(s.library().len(), 1);
        assert_eq!(s.now(), Time::ZERO);
        assert_eq!(s.worker(NodeId(3)).id(), NodeId(3));
    }

    #[test]
    fn call_computes_correct_results() {
        let mut s = system();
        let mut a = args(100);
        let out = s.call(NodeId(0), "scale", &mut a).unwrap();
        assert_eq!(out.device, DeviceClass::Cpu); // no history yet
        let b = a.array("b").unwrap();
        let expect = |x: f64| (x + 1.0).sqrt() * (0.5 * x / (x + 2.0)).exp() + (x.abs() + 1.0).ln();
        assert!((b[0] - expect(0.0)).abs() < 1e-12);
        assert!((b[99] - expect(99.0)).abs() < 1e-12);
        assert!(out.latency > Duration::ZERO);
        assert!(s.energy().as_pj() > 0.0);
        assert_eq!(s.now(), out.completed_at);
    }

    #[test]
    fn unknown_function_errors() {
        let mut s = system();
        let err = s
            .call(NodeId(0), "ghost", &mut KernelArgs::new())
            .unwrap_err();
        assert!(matches!(err, CallError::UnknownFunction { .. }));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn exec_error_propagates() {
        let mut s = system();
        // missing bindings
        let err = s
            .call(NodeId(0), "scale", &mut KernelArgs::new())
            .unwrap_err();
        assert!(matches!(err, CallError::Exec(_)));
    }

    #[test]
    fn calls_migrate_to_hardware_once_loaded_and_measured() {
        let mut s = system();
        // warm history with CPU runs
        for _ in 0..10 {
            let mut a = args(4096);
            let out = s.call(NodeId(0), "scale", &mut a).unwrap();
            assert_eq!(out.device, DeviceClass::Cpu);
        }
        // load the module locally
        let lat = s.load_module(NodeId(0), "scale").unwrap();
        assert!(lat > Duration::ZERO);
        // first HW call measures hardware
        let mut a = args(4096);
        let first_hw = s.call(NodeId(0), "scale", &mut a).unwrap();
        assert_eq!(first_hw.device, DeviceClass::FpgaLocal);
        // now both sides have history; HW is faster, so it stays on HW
        for _ in 0..8 {
            let mut a = args(4096);
            let out = s.call(NodeId(0), "scale", &mut a).unwrap();
            assert_eq!(out.device, DeviceClass::FpgaLocal);
            // results still correct
            let expect = (2.0f64).sqrt() * (0.5f64 / 3.0).exp() + (2.0f64).ln();
            assert!((a.array("b").unwrap()[1] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn remote_unilogic_call_when_only_remote_holds_module() {
        let mut s = system();
        // history on both devices at worker 5 (so predictions exist)
        for _ in 0..10 {
            let mut a = args(4096);
            s.call(NodeId(5), "scale", &mut a).unwrap();
        }
        // module loaded only at worker 0
        s.load_module(NodeId(0), "scale").unwrap();
        // worker 0 measures CPU once (measurement-first policy), then its
        // next call lands on the local FPGA, producing an FpgaLocal sample
        // we can seed worker 5's history with.
        for _ in 0..2 {
            let mut a = args(4096);
            s.call(NodeId(0), "scale", &mut a).unwrap();
        }
        let sample_time = {
            let h = s.worker(NodeId(0)).history();
            h.mean_time("scale", DeviceClass::FpgaLocal).unwrap()
        };
        s.worker_mut(NodeId(5)).history_mut().record(
            "scale",
            DeviceClass::FpgaLocal,
            vec![4096.0],
            sample_time,
            Energy::ZERO,
        );
        // add more FpgaLocal samples so the predictor can fit
        for _ in 0..3 {
            s.worker_mut(NodeId(5)).history_mut().record(
                "scale",
                DeviceClass::FpgaLocal,
                vec![4096.0],
                sample_time,
                Energy::ZERO,
            );
        }
        let mut a = args(4096);
        let out = s.call(NodeId(5), "scale", &mut a).unwrap();
        assert_eq!(out.device, DeviceClass::FpgaRemote);
        assert_eq!(out.served_by, NodeId(0));
    }

    #[test]
    fn tracer_and_metrics_capture_call_path() {
        let tracer = ecoscale_sim::Tracer::buffering();
        let mut s = system();
        s.set_tracer(&tracer);
        for _ in 0..12 {
            let mut a = args(4096);
            s.call(NodeId(1), "scale", &mut a).unwrap();
        }
        s.load_module(NodeId(1), "scale").unwrap();
        let mut a = args(4096);
        s.call(NodeId(1), "scale", &mut a).unwrap();

        let m = s.export_metrics();
        assert_eq!(m.counter("system.calls_cpu"), Some(12));
        assert_eq!(m.counter("system.calls_fpga_local"), Some(1));
        assert_eq!(m.counter("reconfig.loads"), Some(1));
        match m.get("system.call_ns") {
            Some(ecoscale_sim::Instrument::Histogram(h)) => assert_eq!(h.count(), 13),
            other => panic!("unexpected: {other:?}"),
        }
        match m.get("system.fabric_utilization") {
            Some(ecoscale_sim::Instrument::Stats(st)) => {
                assert_eq!(st.count(), s.num_workers() as u64);
                assert!(st.max() > 0.0);
            }
            other => panic!("unexpected: {other:?}"),
        }

        let buf = tracer.take();
        assert!(buf.tracks().iter().any(|t| t == "w1/calls"));
        assert!(buf.tracks().iter().any(|t| t == "w1/fabric"));
        let spans = buf
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ecoscale_sim::trace::EventKind::Complete { .. }))
            .count();
        // 13 calls + 1 reconfiguration
        assert_eq!(spans, 14);
    }

    fn seu_campaign() -> CampaignSpec {
        let mut spec = CampaignSpec::off();
        spec.seu_mtbf = Duration::from_us(200);
        spec.scrub_period = Duration::from_us(500);
        spec
    }

    #[test]
    fn off_campaign_arms_nothing() {
        let mut s = system();
        s.enable_faults(&CampaignSpec::off(), ResilienceConfig::full());
        assert!(s.resilience().is_none());
        let mut plain = system();
        for _ in 0..5 {
            let mut a = args(1024);
            let x = s.call(NodeId(0), "scale", &mut a).unwrap();
            let mut b = args(1024);
            let y = plain.call(NodeId(0), "scale", &mut b).unwrap();
            assert_eq!(x, y);
        }
        assert_eq!(s.fault_tick(), 0);
        assert_eq!(
            s.export_metrics().to_json(),
            plain.export_metrics().to_json(),
            "off campaign leaves reports byte-identical"
        );
    }

    #[test]
    fn seu_upsets_are_scrubbed_and_repaired() {
        let mut s = system();
        s.enable_faults(&seu_campaign(), ResilienceConfig::full());
        s.load_module(NodeId(0), "scale").unwrap();
        let mut repairs = 0;
        for _ in 0..200 {
            let mut a = args(1024);
            s.call(NodeId(0), "scale", &mut a).unwrap();
            repairs += s.fault_tick();
        }
        let mgr = s.resilience().unwrap();
        assert!(mgr.failures() > 0, "upsets recorded as failures");
        assert!(repairs > 0, "scrub loop repaired upset modules");
        assert_eq!(mgr.repairs(), repairs as u64);
        // a persistent failer ends up quarantined (unloaded); otherwise
        // the repair path keeps it resident
        let id = s.library().get("scale").unwrap().module.id();
        let mgr = s.resilience().unwrap();
        if mgr.quarantines() > 0 {
            assert!(!s.worker(NodeId(0)).daemon().is_loaded(id));
        } else {
            assert!(s.worker(NodeId(0)).daemon().is_loaded(id));
        }
        let mgr = s.resilience().unwrap();
        let m = s.export_metrics();
        assert!(m.counter("seu.upsets").unwrap() > 0);
        assert_eq!(m.counter("resilience.repairs"), Some(mgr.repairs()));
    }

    #[test]
    fn upset_module_falls_back_to_software() {
        let mut s = system();
        s.enable_faults(&seu_campaign(), ResilienceConfig::full());
        // make the local FPGA the preferred device
        for _ in 0..10 {
            let mut a = args(4096);
            s.call(NodeId(0), "scale", &mut a).unwrap();
        }
        s.load_module(NodeId(0), "scale").unwrap();
        {
            let mut a = args(4096);
            assert_eq!(
                s.call(NodeId(0), "scale", &mut a).unwrap().device,
                DeviceClass::FpgaLocal
            );
        }
        // run until an upset lands while the module is preferred; the
        // call between upset and scrub must fall back to the CPU
        let mut saw_fallback = false;
        for _ in 0..400 {
            let mut a = args(4096);
            let out = s.call(NodeId(0), "scale", &mut a).unwrap();
            if s.module_upset(NodeId(0), "scale") {
                assert_eq!(out.device, DeviceClass::Cpu, "upset module not used");
            }
            s.fault_tick();
            if s.resilience().unwrap().fallbacks() > 0 {
                saw_fallback = true;
                break;
            }
        }
        assert!(saw_fallback, "campaign never forced a software fallback");
    }

    #[test]
    fn faulted_system_is_deterministic() {
        let run = || {
            let mut s = system();
            s.enable_faults(&seu_campaign(), ResilienceConfig::full());
            s.load_module(NodeId(1), "scale").unwrap();
            for _ in 0..100 {
                let mut a = args(1024);
                s.call(NodeId(1), "scale", &mut a).unwrap();
                s.fault_tick();
            }
            s.export_metrics().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let churn = |s: &mut EcoscaleSystem| {
            for _ in 0..12 {
                let mut a = args(1024);
                s.call(NodeId(1), "scale", &mut a).unwrap();
                s.fault_tick();
            }
            s.daemon_tick();
        };
        let mut orig = system();
        orig.enable_faults(&seu_campaign(), ResilienceConfig::full());
        orig.load_module(NodeId(1), "scale").unwrap();
        churn(&mut orig);

        let mut w = ecoscale_sim::SnapWriter::new();
        orig.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = system();
        fresh.enable_faults(&seu_campaign(), ResilienceConfig::full());
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(
            bytes,
            w2.into_bytes(),
            "restored system re-serializes differently"
        );
        assert_eq!(fresh.now(), orig.now());
        assert_eq!(
            fresh.export_metrics().to_json(),
            orig.export_metrics().to_json()
        );
        // continuation equivalence: both runs stay in lockstep
        churn(&mut orig);
        churn(&mut fresh);
        assert_eq!(fresh.now(), orig.now());
        assert_eq!(
            fresh.export_metrics().to_json(),
            orig.export_metrics().to_json()
        );
        let mut cp = CheckPlane::enabled(1);
        fresh.check_invariants(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
    }

    #[test]
    fn restore_rejects_shape_and_arming_mismatch() {
        let mut orig = system();
        orig.load_module(NodeId(0), "scale").unwrap();
        let mut w = ecoscale_sim::SnapWriter::new();
        orig.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        // a fault-armed system must refuse an unarmed snapshot
        let mut armed = system();
        armed.enable_faults(&seu_campaign(), ResilienceConfig::full());
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        assert!(armed.restore_state(&mut r).is_err());

        // a differently shaped system must refuse it too
        let mut small = SystemBuilder::new()
            .workers_per_node(2)
            .compute_nodes(2)
            .kernel(SCALE, HashMap::from([("n".to_owned(), 4096.0)]))
            .build()
            .unwrap();
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        assert!(small.restore_state(&mut r).is_err());

        // sampled truncation sweep: no cut may restore cleanly
        for cut in (0..bytes.len()).step_by(509).chain([bytes.len() - 1]) {
            let mut s = system();
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                s.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }

    #[test]
    fn daemon_tick_loads_hot_functions() {
        let mut s = system();
        for _ in 0..200 {
            let mut a = args(4096);
            s.call(NodeId(2), "scale", &mut a).unwrap();
        }
        let loads = s.daemon_tick();
        assert!(loads >= 1, "daemon should load the hot kernel somewhere");
        let id = s.library().get("scale").unwrap().module.id();
        assert!(s.worker(NodeId(2)).daemon().is_loaded(id));
    }
}
