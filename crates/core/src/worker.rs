//! The ECOSCALE Worker (Fig. 4): CPU + SMMU + reconfigurable block +
//! DRAM, with the per-worker runtime pieces attached.

use ecoscale_fpga::{Fabric, Floorplanner, ModuleId};
use ecoscale_hls::ModuleLibrary;
use ecoscale_mem::{Smmu, SmmuConfig};
use ecoscale_noc::NodeId;
use ecoscale_runtime::{
    CpuModel, DaemonConfig, ExecutionHistory, FpgaExecModel, ReconfigDaemon, ReconfigError,
};
use ecoscale_sim::Duration;

/// One Worker node.
///
/// # Example
///
/// ```
/// use ecoscale_core::Worker;
/// use ecoscale_noc::NodeId;
///
/// let w = Worker::new(NodeId(3), 40, 60);
/// assert_eq!(w.id(), NodeId(3));
/// assert_eq!(w.loaded_modules().len(), 0);
/// ```
#[derive(Debug)]
pub struct Worker {
    id: NodeId,
    cpu: CpuModel,
    fpga: FpgaExecModel,
    smmu: Smmu,
    daemon: ReconfigDaemon,
    history: ExecutionHistory,
}

impl Worker {
    /// Creates a Worker with a `fabric_cols × fabric_rows` reconfigurable
    /// block and default CPU/SMMU parameters.
    pub fn new(id: NodeId, fabric_cols: u32, fabric_rows: u32) -> Worker {
        Worker {
            id,
            cpu: CpuModel::a53_default(),
            fpga: FpgaExecModel::default(),
            smmu: Smmu::new(SmmuConfig::default()),
            daemon: ReconfigDaemon::new(
                DaemonConfig::default(),
                Floorplanner::new(Fabric::zynq_like(fabric_cols, fabric_rows)),
            ),
            history: ExecutionHistory::new(128),
        }
    }

    /// The Worker's interconnect endpoint.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The CPU cost model.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// The accelerator cost model.
    pub fn fpga(&self) -> &FpgaExecModel {
        &self.fpga
    }

    /// The dual-stage SMMU.
    pub fn smmu(&self) -> &Smmu {
        &self.smmu
    }

    /// Mutable SMMU (mapping, invalidation).
    pub fn smmu_mut(&mut self) -> &mut Smmu {
        &mut self.smmu
    }

    /// The reconfiguration daemon.
    pub fn daemon(&self) -> &ReconfigDaemon {
        &self.daemon
    }

    /// Mutable daemon.
    pub fn daemon_mut(&mut self) -> &mut ReconfigDaemon {
        &mut self.daemon
    }

    /// This Worker's execution history.
    pub fn history(&self) -> &ExecutionHistory {
        &self.history
    }

    /// Mutable history.
    pub fn history_mut(&mut self) -> &mut ExecutionHistory {
        &mut self.history
    }

    /// Split borrow for the daemon's periodic evaluation, which reads the
    /// history while mutating the floorplan.
    pub fn daemon_and_history(&mut self) -> (&mut ReconfigDaemon, &ExecutionHistory) {
        (&mut self.daemon, &self.history)
    }

    /// Modules currently resident on this Worker's fabric.
    pub fn loaded_modules(&self) -> Vec<ModuleId> {
        self.daemon.loaded().collect()
    }

    /// Loads `module` from `library` onto the fabric, returning the
    /// reconfiguration latency.
    ///
    /// # Errors
    ///
    /// [`ReconfigError`] describing why the module cannot be placed.
    pub fn load_module(
        &mut self,
        library: &ModuleLibrary,
        module: ModuleId,
    ) -> Result<Duration, ReconfigError> {
        self.daemon.load(library, module)
    }

    /// Serializes this Worker's mutable state: SMMU translation state,
    /// fabric residency (daemon + floorplan), and execution history. The
    /// CPU/FPGA cost models are build-time configuration and are not
    /// serialized — restore onto an identically-built Worker.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        self.smmu.snapshot_state(w);
        self.daemon.snapshot_state(w);
        self.history.snapshot_state(w);
    }

    /// Overlays state captured by [`Worker::snapshot_state`]. On error
    /// this Worker may be partially overwritten and must be discarded.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] if any layer's stream is truncated,
    /// malformed, or inconsistent with this Worker's build-time shape.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        self.smmu.restore_state(r)?;
        self.daemon.restore_state(r)?;
        self.history.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_fpga::Resources;
    use ecoscale_hls::parse_kernel;
    use std::collections::HashMap;

    fn library() -> ModuleLibrary {
        let k = parse_kernel(
            "kernel f(in float a[], out float b[], int n) {
                 for (i in 0 .. n) { b[i] = a[i] + 1.0; }
             }",
        )
        .unwrap();
        ModuleLibrary::synthesize(
            &[(k, HashMap::from([("n".to_owned(), 1024.0)]))],
            Resources::new(2000, 64, 64),
        )
        .unwrap()
    }

    #[test]
    fn worker_loads_and_tracks_modules() {
        let lib = library();
        let mut w = Worker::new(NodeId(0), 40, 60);
        let id = lib.get("f").unwrap().module.id();
        let lat = w.load_module(&lib, id).unwrap();
        assert!(lat > Duration::ZERO);
        assert_eq!(w.loaded_modules(), vec![id]);
        assert!(w.daemon().is_loaded(id));
    }

    #[test]
    fn worker_accessors() {
        let mut w = Worker::new(NodeId(7), 40, 60);
        assert_eq!(w.id(), NodeId(7));
        assert!(w.cpu().clock_hz > 0);
        assert_eq!(w.history().call_count("x"), 0);
        w.history_mut().record(
            "x",
            ecoscale_runtime::DeviceClass::Cpu,
            vec![],
            Duration::from_us(1),
            ecoscale_sim::Energy::ZERO,
        );
        assert_eq!(w.history().call_count("x"), 1);
        // SMMU reachable
        assert_eq!(w.smmu().tlb_misses(), 0);
        let _ = w.smmu_mut();
        let _ = w.fpga();
    }
}
