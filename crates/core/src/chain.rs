//! Accelerator chaining (§4.3).
//!
//! "We consider chaining together different accelerator modules for
//! building longer complex processing pipelines, when needed. This will
//! substantially increase the amount of processing that is carried out
//! per unit of transferred data and will consequently result in
//! substantial energy savings."
//!
//! A [`Chain`] runs data through K modules. Chained, the intermediate
//! results stream module-to-module on the fabric and DRAM is touched only
//! at the ends; unchained (store-and-reload), every stage round-trips
//! DRAM. Experiment E11 sweeps chain length.

use ecoscale_fpga::AcceleratorModule;
use ecoscale_mem::DramModel;
use ecoscale_runtime::FpgaExecModel;
use ecoscale_sim::{Duration, Energy};

/// The cost of pushing one batch through a chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainCost {
    /// End-to-end latency.
    pub latency: Duration,
    /// Total energy.
    pub energy: Energy,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
}

/// A pipeline of accelerator modules.
///
/// # Example
///
/// ```
/// use ecoscale_core::Chain;
/// use ecoscale_fpga::{AcceleratorModule, Bitstream, ModuleId, Resources};
///
/// let stage = |i: u32| AcceleratorModule::new(
///     ModuleId(i), "s", Resources::new(400, 8, 8),
///     200_000_000, 1, 16,
///     Bitstream::synthesize(Resources::new(400, 8, 8), i as u64),
/// );
/// let chain = Chain::new(vec![stage(0), stage(1), stage(2)]);
/// let fused = chain.chained(100_000, 8, 10);
/// let split = chain.store_and_reload(100_000, 8, 10);
/// assert!(fused.dram_bytes < split.dram_bytes);
/// assert!(fused.energy < split.energy);
/// ```
#[derive(Debug, Clone)]
pub struct Chain {
    stages: Vec<AcceleratorModule>,
    fpga: FpgaExecModel,
    dram: DramModel,
}

impl Chain {
    /// Builds a chain from stages (executed in order).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<AcceleratorModule>) -> Chain {
        assert!(!stages.is_empty(), "chain needs at least one stage");
        Chain {
            stages,
            fpga: FpgaExecModel::default(),
            dram: DramModel::default(),
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the chain has exactly one stage (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Chained execution: load the batch once, stream it through every
    /// stage on-fabric, store the result once.
    ///
    /// `items` flow through; each item is `bytes_per_item` wide and each
    /// stage performs `ops_per_item` arithmetic on it.
    pub fn chained(&self, items: u64, bytes_per_item: u64, ops_per_item: u64) -> ChainCost {
        let bytes = items * bytes_per_item;
        let (t_in, e_in) = self.dram.stream(bytes);
        let (t_out, e_out) = self.dram.stream(bytes);
        // stages run as one fused pipeline: total depth = sum of depths,
        // II = max of stage IIs
        let max_ii = self
            .stages
            .iter()
            .map(|s| s.initiation_interval())
            .max()
            .expect("non-empty");
        let total_depth: u64 = self.stages.iter().map(|s| s.pipeline_depth() as u64).sum();
        let clock = self
            .stages
            .iter()
            .map(|s| s.clock_hz())
            .min()
            .expect("non-empty");
        let cycles = total_depth + items.saturating_sub(1) * max_ii as u64 + 1;
        let t_exec = Duration::from_cycles(cycles, clock);
        let mut e_exec = Energy::ZERO;
        for _ in &self.stages {
            e_exec += self.fpga.energy_per_op * (items * ops_per_item) as f64;
        }
        e_exec += self.fpga.static_energy_per_sec * t_exec.as_secs_f64();
        ChainCost {
            latency: t_in + t_exec + t_out,
            energy: e_in + e_out + e_exec,
            dram_bytes: 2 * bytes,
        }
    }

    /// Store-and-reload execution: every stage loads its input from DRAM
    /// and stores its output back.
    pub fn store_and_reload(
        &self,
        items: u64,
        bytes_per_item: u64,
        ops_per_item: u64,
    ) -> ChainCost {
        let bytes = items * bytes_per_item;
        let mut latency = Duration::ZERO;
        let mut energy = Energy::ZERO;
        let mut dram_bytes = 0;
        for stage in &self.stages {
            let (t_in, e_in) = self.dram.stream(bytes);
            let (t_out, e_out) = self.dram.stream(bytes);
            let (t_exec, e_exec) = self.fpga.exec(stage, items, ops_per_item);
            latency += t_in + t_exec + t_out;
            energy += e_in + e_out + e_exec;
            dram_bytes += 2 * bytes;
        }
        ChainCost {
            latency,
            energy,
            dram_bytes,
        }
    }

    /// Operations performed per DRAM byte moved — the paper's "processing
    /// per unit of transferred data" metric.
    pub fn ops_per_dram_byte(&self, cost: &ChainCost, items: u64, ops_per_item: u64) -> f64 {
        let total_ops = items * ops_per_item * self.stages.len() as u64;
        if cost.dram_bytes == 0 {
            return 0.0;
        }
        total_ops as f64 / cost.dram_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_fpga::{Bitstream, ModuleId, Resources};

    fn stage(i: u32, ii: u32) -> AcceleratorModule {
        AcceleratorModule::new(
            ModuleId(i),
            "s",
            Resources::new(400, 8, 8),
            200_000_000,
            ii,
            16,
            Bitstream::synthesize(Resources::new(400, 8, 8), i as u64),
        )
    }

    fn chain(n: u32) -> Chain {
        Chain::new((0..n).map(|i| stage(i, 1)).collect())
    }

    #[test]
    fn chaining_cuts_dram_traffic_linearly() {
        let items = 100_000;
        for k in [1u32, 2, 4, 6] {
            let c = chain(k);
            let fused = c.chained(items, 8, 10);
            let split = c.store_and_reload(items, 8, 10);
            assert_eq!(fused.dram_bytes, 2 * items * 8);
            assert_eq!(split.dram_bytes, 2 * items * 8 * k as u64);
        }
    }

    #[test]
    fn chaining_saves_energy_and_time() {
        let c = chain(4);
        let fused = c.chained(500_000, 8, 10);
        let split = c.store_and_reload(500_000, 8, 10);
        assert!(fused.energy < split.energy);
        assert!(fused.latency < split.latency);
    }

    #[test]
    fn ops_per_byte_grows_with_chain_length() {
        let items = 100_000;
        let mut last = 0.0;
        for k in [1u32, 2, 4] {
            let c = chain(k);
            let fused = c.chained(items, 8, 10);
            let v = c.ops_per_dram_byte(&fused, items, 10);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn single_stage_chained_close_to_reload() {
        let c = chain(1);
        let fused = c.chained(10_000, 8, 10);
        let split = c.store_and_reload(10_000, 8, 10);
        assert_eq!(fused.dram_bytes, split.dram_bytes);
        // same DRAM traffic; latency within 10%
        let ratio = fused.latency / split.latency;
        assert!(ratio > 0.8 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn slowest_stage_bounds_fused_ii() {
        let slow = Chain::new(vec![stage(0, 1), stage(1, 8), stage(2, 1)]);
        let fast = chain(3);
        let a = slow.chained(100_000, 8, 10);
        let b = fast.chained(100_000, 8, 10);
        assert!(a.latency > b.latency * 4);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_rejected() {
        Chain::new(vec![]);
    }

    #[test]
    fn len_accessor() {
        assert_eq!(chain(3).len(), 3);
        assert!(!chain(1).is_empty());
    }
}
