//! System-wide execution reports.
//!
//! The runtime monitoring §4.2 describes needs somewhere to surface:
//! [`SystemReport`] snapshots an [`EcoscaleSystem`]
//! — per-function call counts and devices, per-worker fabric occupancy,
//! reconfiguration activity — and renders as a fixed-width table for
//! operator consumption.

use core::fmt;

use ecoscale_runtime::serve::ServingReport;
use ecoscale_runtime::DeviceClass;
use ecoscale_sim::json;
use ecoscale_sim::prof::{self, ProfileReport};
use ecoscale_sim::report::Table;
use ecoscale_sim::{Energy, MetricsRegistry, Time};

use crate::system::EcoscaleSystem;

/// Per-function aggregate across all workers.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSummary {
    /// Function name.
    pub function: String,
    /// Total calls recorded.
    pub calls: u64,
    /// Workers holding the function's module right now.
    pub resident_on: usize,
    /// Mean software time, if measured.
    pub mean_cpu: Option<ecoscale_sim::Duration>,
    /// Mean local-accelerator time, if measured.
    pub mean_hw: Option<ecoscale_sim::Duration>,
}

/// A point-in-time snapshot of a system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// System clock at snapshot time.
    pub now: Time,
    /// Total energy charged.
    pub energy: Energy,
    /// Number of workers.
    pub workers: usize,
    /// Modules resident across all fabrics.
    pub resident_modules: usize,
    /// Mean fabric column utilization across workers.
    pub mean_fabric_utilization: f64,
    /// Per-function aggregates, hottest first.
    pub functions: Vec<FunctionSummary>,
    /// Every layer's instruments (SMMU, UNIMEM, NoC, reconfiguration,
    /// system call path) snapshotted at capture time.
    pub metrics: MetricsRegistry,
    /// ProfPlane critical-path blame over the system's trace buffer.
    /// `None` when no tracer is installed (nothing to analyse).
    pub profile: Option<ProfileReport>,
    /// ServePlane SLO accounting. `None` unless the system was driven
    /// by a serving run (`ecoscale_core::serve_model` fills it in).
    pub serving: Option<ServingReport>,
}

impl SystemReport {
    /// Snapshots `system`.
    pub fn capture(system: &EcoscaleSystem) -> SystemReport {
        let workers = system.num_workers();
        let mut resident_modules = 0usize;
        let mut util = 0.0;
        // aggregate function stats across workers
        let mut functions: Vec<FunctionSummary> = Vec::new();
        for w in 0..workers {
            let worker = system.worker(ecoscale_noc::NodeId(w));
            resident_modules += worker.loaded_modules().len();
            util += worker.daemon().floorplan().utilization();
            for (name, calls) in worker.history().hottest_functions() {
                match functions.iter_mut().find(|f| f.function == name) {
                    Some(f) => f.calls += calls,
                    None => functions.push(FunctionSummary {
                        function: name.clone(),
                        calls,
                        resident_on: 0,
                        mean_cpu: worker.history().mean_time(&name, DeviceClass::Cpu),
                        mean_hw: worker.history().mean_time(&name, DeviceClass::FpgaLocal),
                    }),
                }
            }
        }
        // residency per function
        for f in &mut functions {
            if let Some(entry) = system.library().get(&f.function) {
                let id = entry.module.id();
                f.resident_on = (0..workers)
                    .filter(|&w| {
                        system
                            .worker(ecoscale_noc::NodeId(w))
                            .daemon()
                            .is_loaded(id)
                    })
                    .count();
            }
        }
        functions.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.function.cmp(&b.function)));
        SystemReport {
            now: system.now(),
            energy: system.energy(),
            workers,
            resident_modules,
            mean_fabric_utilization: util / workers as f64,
            functions,
            metrics: system.export_metrics(),
            profile: system
                .tracer()
                .is_enabled()
                .then(|| prof::critical_path(&system.tracer().snapshot())),
            serving: None,
        }
    }

    /// Renders the snapshot as a JSON object. Deterministic: fixed key
    /// order, functions in the (sorted) capture order, and the metrics
    /// section embedded via [`MetricsRegistry::to_json`]. The golden
    /// schema test under `tests/golden/` pins this shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"now_ps\":");
        out.push_str(&self.now.as_ps().to_string());
        out.push_str(",\"energy_uj\":");
        json::fmt_f64(&mut out, self.energy.as_uj());
        out.push_str(",\"workers\":");
        out.push_str(&self.workers.to_string());
        out.push_str(",\"resident_modules\":");
        out.push_str(&self.resident_modules.to_string());
        out.push_str(",\"mean_fabric_utilization\":");
        json::fmt_f64(&mut out, self.mean_fabric_utilization);
        out.push_str(",\"functions\":[");
        for (i, f) in self.functions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"function\":");
            json::escape(&mut out, &f.function);
            out.push_str(",\"calls\":");
            out.push_str(&f.calls.to_string());
            out.push_str(",\"resident_on\":");
            out.push_str(&f.resident_on.to_string());
            out.push_str(",\"mean_cpu_ns\":");
            match f.mean_cpu {
                Some(d) => json::fmt_f64(&mut out, d.as_ns_f64()),
                None => out.push_str("null"),
            }
            out.push_str(",\"mean_hw_ns\":");
            match f.mean_hw {
                Some(d) => json::fmt_f64(&mut out, d.as_ns_f64()),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("],\"metrics\":");
        out.push_str(&self.metrics.to_json());
        out.push_str(",\"profile\":");
        match &self.profile {
            Some(p) => out.push_str(&p.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"serving\":");
        match &self.serving {
            Some(s) => out.push_str(&s.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Renders the per-function table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "system report",
            &["function", "calls", "resident on", "mean cpu", "mean hw"],
        );
        for f in &self.functions {
            t.row_owned(vec![
                f.function.clone(),
                f.calls.to_string(),
                f.resident_on.to_string(),
                f.mean_cpu.map_or("-".into(), |d| d.to_string()),
                f.mean_hw.map_or("-".into(), |d| d.to_string()),
            ]);
        }
        t
    }
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "t = {}, energy = {}, workers = {}, resident modules = {}, fabric util = {:.1}%",
            self.now,
            self.energy,
            self.workers,
            self.resident_modules,
            self.mean_fabric_utilization * 100.0
        )?;
        writeln!(f, "{}", self.to_table())?;
        write!(f, "{}", self.metrics.to_table("metrics"))?;
        if let Some(p) = &self.profile {
            write!(f, "\n{}", p.to_table())?;
        }
        if let Some(s) = &self.serving {
            write!(f, "\n{}", s.to_table())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;
    use ecoscale_hls::KernelArgs;
    use ecoscale_noc::NodeId;
    use std::collections::HashMap;

    const K: &str = "kernel hot(in float a[], out float b[], int n) {
        for (i in 0 .. n) { b[i] = sqrt(a[i] + 1.0) * exp(a[i] / 100.0); }
    }";

    fn args(n: usize) -> KernelArgs {
        let mut a = KernelArgs::new();
        a.bind_array("a", (0..n).map(|i| i as f64).collect())
            .bind_array("b", vec![0.0; n])
            .bind_scalar("n", n as f64);
        a
    }

    #[test]
    fn report_tracks_calls_and_residency() {
        let mut s = SystemBuilder::new()
            .workers_per_node(4)
            .compute_nodes(2)
            .kernel(K, HashMap::from([("n".to_owned(), 4096.0)]))
            .build()
            .unwrap();
        let empty = SystemReport::capture(&s);
        assert_eq!(empty.resident_modules, 0);
        assert!(empty.functions.is_empty());
        assert_eq!(empty.workers, 8);

        for _ in 0..12 {
            let mut a = args(4096);
            s.call(NodeId(0), "hot", &mut a).unwrap();
        }
        s.daemon_tick();
        let mut a = args(4096);
        s.call(NodeId(0), "hot", &mut a).unwrap();

        let r = SystemReport::capture(&s);
        assert_eq!(r.functions.len(), 1);
        assert_eq!(r.functions[0].function, "hot");
        assert_eq!(r.functions[0].calls, 13);
        assert_eq!(r.functions[0].resident_on, 1);
        assert!(r.functions[0].mean_cpu.is_some());
        assert!(r.resident_modules >= 1);
        assert!(r.mean_fabric_utilization > 0.0);
        assert!(r.energy.as_uj() > 0.0);

        let rendered = r.to_string();
        assert!(rendered.contains("hot"));
        assert!(rendered.contains("resident"));

        // the metrics section is populated and rendered
        assert!(r.metrics.counter("system.calls_cpu").unwrap() >= 12);
        assert!(r.metrics.counter("reconfig.loads").unwrap() >= 1);
        assert!(rendered.contains("== metrics =="));
        assert!(rendered.contains("system.call_ns"));

        // JSON rendering parses and carries the same aggregates.
        let parsed = json::parse(&r.to_json()).unwrap();
        assert_eq!(parsed.get("workers").and_then(|v| v.as_f64()), Some(8.0));
        let funcs = parsed.get("functions").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(funcs.len(), 1);
        assert_eq!(
            funcs[0].get("function").and_then(|v| v.as_str()),
            Some("hot")
        );
        assert!(parsed
            .get("metrics")
            .and_then(|m| m.get("system.calls_cpu"))
            .is_some());
        // no tracer installed -> no profile section; not a serving run
        assert!(r.profile.is_none());
        assert!(r.serving.is_none());
        assert!(r.to_json().ends_with(",\"profile\":null,\"serving\":null}"));
    }

    #[test]
    fn traced_system_report_carries_blame_profile() {
        let tracer = ecoscale_sim::Tracer::buffering();
        let mut s = SystemBuilder::new()
            .workers_per_node(2)
            .compute_nodes(2)
            .kernel(K, HashMap::from([("n".to_owned(), 4096.0)]))
            .build()
            .unwrap();
        s.set_tracer(&tracer);
        for _ in 0..13 {
            let mut a = args(4096);
            s.call(NodeId(0), "hot", &mut a).unwrap();
        }
        s.daemon_tick();

        let r = SystemReport::capture(&s);
        let p = r.profile.as_ref().expect("tracer installed");
        assert!(p.total_ps > 0);
        assert_eq!(p.blame_ps.iter().sum::<u64>(), p.total_ps);
        let total: f64 = ecoscale_sim::prof::Layer::ALL
            .into_iter()
            .map(|l| p.percent(l))
            .sum();
        assert!((total - 100.0).abs() < 1e-9, "percentages sum to {total}");
        // capture() must not drain the tracer's buffer
        assert!(!tracer.snapshot().is_empty());
        assert!(r.to_string().contains("critical-path blame"));
        let parsed = json::parse(&r.to_json()).unwrap();
        let blame = parsed
            .get("profile")
            .and_then(|p| p.get("blame"))
            .and_then(|b| b.as_arr())
            .expect("profile blame array");
        assert_eq!(blame.len(), ecoscale_sim::prof::LAYERS);
    }
}
