//! The cluster-partitioned system model driven by the sharded engine.
//!
//! [`ShardSimConfig`] describes an ECOSCALE machine as `clusters`
//! Worker-clusters (Compute Nodes) of `workers_per_cluster` Workers.
//! Each cluster becomes one [`ClusterModel`] with its own UNIMEM system,
//! intra-cluster NoC, CPU model, task trace, and seeded RNG; clusters
//! interact only through keyed cross-cluster messages (remote UNIMEM
//! requests and their replies), whose delay is the global NoC latency —
//! always at least the engine lookahead, because the lookahead *is* the
//! minimum inter-cluster NoC latency
//! ([`CostModel::min_inter_cluster_latency`]).
//!
//! [`run_shard_sim`] executes the model on the [`ShardedEngine`] and
//! folds every cluster's instruments into one [`ShardOutcome`] — merged
//! metrics, a merged trace buffer, and a report — all assembled in
//! cluster index order, so every export is byte-identical at any
//! `ECOSCALE_SHARDS` setting.

use ecoscale_mem::{CacheConfig, DramModel, GlobalAddr, UnimemSystem};
use ecoscale_noc::{CostModel, Network, NetworkConfig, NodeId, Topology, TreeTopology};
use ecoscale_runtime::{partitioned_traces, CpuModel, TaskSpec};
use ecoscale_sim::check::CheckPlane;
use ecoscale_sim::prof::{Profiler, ShardOccupancy};
use ecoscale_sim::shard::{ClusterCtx, ClusterModel, ShardedEngine};
use ecoscale_sim::{
    Duration, Energy, MetricsRegistry, SimRng, StopReason, Time, TimeSeries, TraceBuffer, Tracer,
    TrackId,
};

/// Occupancy band widths every shard run accounts for (clamped to the
/// cluster count). One run yields critical-path bounds for all of them.
pub const OCCUPANCY_WIDTHS: [usize; 3] = [2, 4, 8];

/// Shape and workload of a cluster-partitioned simulation.
#[derive(Debug, Clone)]
pub struct ShardSimConfig {
    /// Worker clusters (Compute Nodes). At least 2.
    pub clusters: usize,
    /// Workers per cluster. At least 2 (tree fanout floor).
    pub workers_per_cluster: usize,
    /// Tasks arriving at each cluster.
    pub tasks_per_cluster: usize,
    /// Work per task in flop-equivalents.
    pub flops: u64,
    /// Zipf skew of task homes inside a cluster.
    pub skew: f64,
    /// Inter-arrival spacing within a cluster, nanoseconds.
    pub spacing_ns: u64,
    /// Probability that a task needs one remote-cluster UNIMEM fetch.
    pub remote_frac: f64,
    /// Master seed; every cluster derives its streams from it by index.
    pub seed: u64,
    /// Per-safe-window telemetry feed: when set, the engine keeps a
    /// [`TimeSeries`] of `(window width, retained windows)` fed one safe
    /// window at a time ([`ShardOutcome::series`]). `None` costs one
    /// branch per window.
    pub telemetry: Option<(Duration, usize)>,
}

impl ShardSimConfig {
    /// A config with workload defaults for the given shape.
    pub fn new(clusters: usize, workers_per_cluster: usize) -> ShardSimConfig {
        ShardSimConfig {
            clusters,
            workers_per_cluster,
            tasks_per_cluster: 256,
            flops: 50_000,
            skew: 1.1,
            spacing_ns: 500,
            remote_frac: 0.15,
            seed: 0xEC05,
            telemetry: None,
        }
    }

    /// The global machine topology: one tree level inside the cluster,
    /// one across clusters.
    pub fn topology(&self) -> TreeTopology {
        TreeTopology::new(&[self.workers_per_cluster, self.clusters])
    }

    /// The engine lookahead: the minimum inter-cluster NoC latency of
    /// [`ShardSimConfig::topology`] under the default cost ladder.
    pub fn lookahead(&self) -> Duration {
        CostModel::ecoscale_defaults().min_inter_cluster_latency(&self.topology(), 1)
    }
}

/// Cluster-local events of the partitioned model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEv {
    /// Task `i` of this cluster's trace becomes ready.
    Arrive(u32),
    /// Worker `worker` finishes task `task`.
    Finish {
        /// Executing worker (cluster-local index).
        worker: u32,
        /// Task index in the cluster's trace.
        task: u32,
    },
    /// A UNIMEM request from cluster `reply_to` for `bytes` homed here.
    RemoteReq {
        /// Requesting cluster.
        reply_to: u32,
        /// Requesting worker (index in that cluster).
        worker: u32,
        /// Requesting task (index in that cluster's trace).
        task: u32,
        /// Payload size.
        bytes: u64,
    },
    /// The reply: remote data for `task` arrived back at `worker`.
    RemoteResp {
        /// Worker waiting on the data.
        worker: u32,
        /// The task that may now execute.
        task: u32,
    },
}

/// One cluster: its Workers, memory system, intra-cluster NoC and trace.
pub struct ClusterSimModel {
    cluster: usize,
    clusters: usize,
    workers: usize,
    remote_frac: f64,
    trace: Vec<TaskSpec>,
    cpu: CpuModel,
    mem: UnimemSystem,
    net: Network<TreeTopology>,
    rng: SimRng,
    global_topo: TreeTopology,
    global_cost: CostModel,
    next_free: Vec<Time>,
    tracer: Tracer,
    tracks: Vec<TrackId>,
    completed: u64,
    remote_requests: u64,
    remote_served: u64,
    busy: Duration,
    energy: Energy,
}

impl ClusterSimModel {
    fn new(cluster: usize, cfg: &ShardSimConfig, trace: Vec<TaskSpec>) -> ClusterSimModel {
        let tracer = Tracer::buffering();
        let tracks = (0..cfg.workers_per_cluster)
            .map(|w| tracer.track(&format!("c{cluster}/w{w}")))
            .collect();
        ClusterSimModel {
            cluster,
            clusters: cfg.clusters,
            workers: cfg.workers_per_cluster,
            remote_frac: cfg.remote_frac,
            trace,
            cpu: CpuModel::a53_default(),
            mem: UnimemSystem::new(
                cfg.workers_per_cluster,
                CacheConfig::l1_default(),
                DramModel::default(),
            ),
            net: Network::new(
                TreeTopology::new(&[cfg.workers_per_cluster]),
                NetworkConfig::default(),
            ),
            rng: SimRng::seed_from(cfg.seed ^ 0x5AA5 ^ ((cluster as u64) << 32)),
            global_topo: cfg.topology(),
            global_cost: CostModel::ecoscale_defaults(),
            next_free: vec![Time::ZERO; cfg.workers_per_cluster],
            tracer,
            tracks,
            completed: 0,
            remote_requests: 0,
            remote_served: 0,
            busy: Duration::ZERO,
            energy: Energy::ZERO,
        }
    }

    /// Transit latency of `bytes` between this cluster and `dst` over the
    /// global NoC (representative leaf pair; in a two-level tree every
    /// inter-cluster pair crosses the same ladder).
    fn transit(&self, dst: usize, bytes: u64) -> Duration {
        let src = NodeId(self.cluster * self.workers);
        let to = NodeId(dst * self.workers);
        self.global_cost
            .latency(&self.global_topo.route(src, to), bytes)
    }

    /// Execution cost of trace task `i` on a Worker CPU.
    fn exec_cost(&self, i: u32) -> (Duration, Energy) {
        let t = &self.trace[i as usize].task;
        self.cpu.exec(t.flops(), t.mem_ops())
    }

    /// The Worker that frees up first (ties to the lowest index).
    fn pick_worker(&self) -> usize {
        let mut best = 0;
        for w in 1..self.next_free.len() {
            if self.next_free[w] < self.next_free[best] {
                best = w;
            }
        }
        best
    }

    /// Starts task `i` on worker `w` at `start`; schedules its finish.
    fn start_task(&mut self, start: Time, w: usize, i: u32, ctx: &mut ClusterCtx<'_, ClusterEv>) {
        let (d, e) = self.exec_cost(i);
        // one local UNIMEM line read per task (cache-home path inside
        // the cluster)
        let spec = &self.trace[i as usize];
        let home = NodeId(spec.task.data_home().0 % self.workers);
        let addr = GlobalAddr::new(home, u64::from(i) * 64);
        let acc = self.mem.read(&mut self.net, start, NodeId(w), addr, 64);
        self.energy += acc.energy;
        let fin = start + acc.latency + d;
        self.next_free[w] = fin;
        self.energy += e;
        self.busy += fin.since(start);
        ctx.schedule_at(
            fin,
            ClusterEv::Finish {
                worker: w as u32,
                task: i,
            },
        );
    }

    fn export_metrics(&self, m: &mut MetricsRegistry) {
        m.add("shard.tasks_completed", self.completed);
        m.add("shard.remote_requests", self.remote_requests);
        m.add("shard.remote_served", self.remote_served);
        m.observe("shard.busy_ms", self.busy.as_ns_f64() / 1e6);
        m.observe("shard.energy_uj", self.energy.as_uj());
        self.mem.export_metrics(m, "unimem");
        self.net.export_metrics(m, "noc");
    }
}

impl ClusterModel for ClusterSimModel {
    type Event = ClusterEv;

    fn handle(&mut self, now: Time, ev: ClusterEv, ctx: &mut ClusterCtx<'_, ClusterEv>) {
        match ev {
            ClusterEv::Arrive(i) => {
                let needs_remote = self.clusters > 1 && self.rng.gen_bool(self.remote_frac);
                if needs_remote {
                    // fetch one remote line first; the task runs when the
                    // reply lands (its worker keeps serving other tasks)
                    let mut dst = self.rng.gen_range_usize(0, self.clusters - 1);
                    if dst >= self.cluster {
                        dst += 1;
                    }
                    self.remote_requests += 1;
                    let w = self.pick_worker() as u32;
                    ctx.send(
                        dst,
                        self.transit(dst, 16),
                        ClusterEv::RemoteReq {
                            reply_to: self.cluster as u32,
                            worker: w,
                            task: i,
                            bytes: 256,
                        },
                    );
                } else {
                    let w = self.pick_worker();
                    let start = now.max(self.next_free[w]);
                    self.start_task(start, w, i, ctx);
                }
            }
            ClusterEv::RemoteReq {
                reply_to,
                worker,
                task,
                bytes,
            } => {
                let (service, e) = self.mem.serve_remote(bytes);
                self.energy += e;
                self.remote_served += 1;
                ctx.send(
                    reply_to as usize,
                    self.transit(reply_to as usize, bytes) + service,
                    ClusterEv::RemoteResp { worker, task },
                );
            }
            ClusterEv::RemoteResp { worker, task } => {
                let w = worker as usize;
                let start = now.max(self.next_free[w]);
                self.start_task(start, w, task, ctx);
            }
            ClusterEv::Finish { worker, task } => {
                self.completed += 1;
                let (d, _) = self.exec_cost(task);
                if let Some(&track) = self.tracks.get(worker as usize) {
                    let start = Time::from_ps(now.as_ps().saturating_sub(d.as_ps()));
                    self.tracer.complete(track, "task", start, d);
                }
            }
        }
    }
}

/// Everything one sharded run produced, merged in cluster index order.
pub struct ShardOutcome {
    /// Merged per-cluster instruments (shared keys sum across clusters).
    pub metrics: MetricsRegistry,
    /// Merged trace spans from every cluster's Workers.
    pub trace: TraceBuffer,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Completion time of the last event.
    pub makespan: Time,
    /// Tasks completed across all clusters.
    pub completed: u64,
    /// Events the engine delivered.
    pub events: u64,
    /// Safe windows executed.
    pub rounds: u64,
    /// Cross-cluster messages exchanged.
    pub messages: u64,
    /// The lookahead the run synchronized on.
    pub lookahead: Duration,
    /// Per-window occupancy accounting over [`OCCUPANCY_WIDTHS`] bands.
    /// Derived from event counts, so byte-identical at any shard count;
    /// also exported under `shard.occupancy.*` in `metrics`.
    pub occupancy: ShardOccupancy,
    /// Per-safe-window telemetry series when
    /// [`ShardSimConfig::telemetry`] was set (byte-identical at any
    /// shard count, like occupancy).
    pub series: Option<TimeSeries>,
}

impl ShardOutcome {
    /// A deterministic JSON report of the run — simulation results only
    /// (no wall-clock, no shard count), so it is byte-identical at any
    /// `ECOSCALE_SHARDS` setting.
    pub fn report(&self) -> String {
        format!(
            concat!(
                "{{\"experiment\":\"p1\",\"completed\":{},\"events\":{},",
                "\"rounds\":{},\"messages\":{},\"lookahead_ns\":{},",
                "\"makespan_ns\":{}}}"
            ),
            self.completed,
            self.events,
            self.rounds,
            self.messages,
            self.lookahead.as_ns_f64(),
            self.makespan.as_ns_f64(),
        )
    }
}

/// Runs `cfg` on the sharded engine with the shard count from
/// `ECOSCALE_SHARDS` and a [`CheckPlane`] from `ECOSCALE_CHECK`.
pub fn run_shard_sim(cfg: &ShardSimConfig) -> ShardOutcome {
    let mut cp = CheckPlane::from_env();
    run_shard_sim_with(cfg, None, &mut cp)
}

/// [`run_shard_sim`] with an explicit shard count and CheckPlane.
///
/// # Panics
///
/// Panics if the config has fewer than 2 clusters or workers per cluster.
pub fn run_shard_sim_with(
    cfg: &ShardSimConfig,
    shards: Option<usize>,
    cp: &mut CheckPlane,
) -> ShardOutcome {
    run_shard_sim_inner(cfg, shards, false, cp).0
}

/// [`run_shard_sim`] with wall-clock self-profiling armed: the engine
/// times its drain/decide/process/barrier phases and returns them next
/// to the outcome. The outcome stays byte-identical to an unobserved
/// run at any shard count; the [`Profiler`] is host-dependent and must
/// never be folded into deterministic exports.
pub fn run_shard_sim_observed(
    cfg: &ShardSimConfig,
    cp: &mut CheckPlane,
) -> (ShardOutcome, Profiler) {
    run_shard_sim_inner(cfg, None, true, cp)
}

fn run_shard_sim_inner(
    cfg: &ShardSimConfig,
    shards: Option<usize>,
    observe: bool,
    cp: &mut CheckPlane,
) -> (ShardOutcome, Profiler) {
    assert!(cfg.clusters >= 2, "need at least 2 clusters");
    assert!(
        cfg.workers_per_cluster >= 2,
        "need at least 2 workers per cluster"
    );
    let traces = partitioned_traces(
        cfg.clusters,
        cfg.tasks_per_cluster,
        cfg.workers_per_cluster,
        cfg.flops,
        cfg.skew,
        cfg.spacing_ns,
        cfg.seed,
    );
    let models: Vec<ClusterSimModel> = traces
        .into_iter()
        .enumerate()
        .map(|(c, trace)| ClusterSimModel::new(c, cfg, trace))
        .collect();
    let lookahead = cfg.lookahead();
    let mut engine = ShardedEngine::new(models, lookahead).with_occupancy(&OCCUPANCY_WIDTHS);
    if let Some((width, retain)) = cfg.telemetry {
        engine = engine.with_series(width, retain);
    }
    if let Some(n) = shards {
        engine = engine.with_shards(n);
    }
    if observe {
        engine = engine.with_self_profiling();
    }
    for c in 0..cfg.clusters {
        let arrivals: Vec<Time> = engine.model(c).trace.iter().map(|s| s.arrival).collect();
        for (i, at) in arrivals.into_iter().enumerate() {
            engine.schedule(c, at, ClusterEv::Arrive(i as u32));
        }
    }
    let stop = engine.run_until(Time::MAX, u64::MAX);
    engine.check_invariants(cp);

    let mut metrics = MetricsRegistry::new();
    let mut trace = TraceBuffer::default();
    let mut completed = 0;
    for c in 0..cfg.clusters {
        let model = engine.model(c);
        model.export_metrics(&mut metrics);
        completed += model.completed;
        model.mem.check_invariants(cp);
        trace.merge(model.tracer.take());
    }
    let occupancy = engine
        .occupancy()
        .cloned()
        .expect("occupancy is always armed");
    occupancy.export_metrics(&mut metrics, "shard.occupancy");
    let series = engine.series().cloned();
    let outcome = ShardOutcome {
        metrics,
        trace,
        stop,
        makespan: engine.clock(),
        completed,
        events: engine.events_processed(),
        rounds: engine.rounds(),
        messages: engine.messages_sent(),
        lookahead,
        occupancy,
        series,
    };
    (outcome, engine.wall_profile().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShardSimConfig {
        let mut cfg = ShardSimConfig::new(6, 4);
        cfg.tasks_per_cluster = 64;
        cfg
    }

    fn capture(shards: usize) -> (String, String, String, u64, u64) {
        let mut cp = CheckPlane::enabled(1);
        let out = run_shard_sim_with(&small(), Some(shards), &mut cp);
        assert!(cp.ok(), "shards={shards}: {:?}", cp.first());
        (
            out.metrics.to_json(),
            out.trace.to_chrome_json(),
            out.report(),
            out.events,
            out.rounds,
        )
    }

    #[test]
    fn all_tasks_complete() {
        let mut cp = CheckPlane::enabled(1);
        let out = run_shard_sim_with(&small(), Some(1), &mut cp);
        assert_eq!(out.stop, StopReason::QueueEmpty);
        assert_eq!(out.completed, 6 * 64);
        assert!(out.makespan > Time::ZERO);
        assert!(out.messages > 0, "remote_frac must generate traffic");
        assert_eq!(out.lookahead, Duration::from_ns(90));
        assert!(cp.ok(), "{:?}", cp.first());
    }

    #[test]
    fn exports_are_identical_across_shard_counts() {
        let want = capture(1);
        for shards in [2, 4, 8] {
            assert_eq!(capture(shards), want, "shards={shards}");
        }
    }

    #[test]
    fn report_carries_simulation_results_only() {
        let mut cp = CheckPlane::enabled(1);
        let out = run_shard_sim_with(&small(), Some(2), &mut cp);
        let r = out.report();
        assert!(r.contains("\"experiment\":\"p1\""));
        assert!(r.contains(&format!("\"completed\":{}", out.completed)));
        assert!(!r.contains("shards"));
        assert!(!r.contains("wall"));
    }

    #[test]
    fn lookahead_matches_topology_floor() {
        let cfg = ShardSimConfig::new(8, 4);
        // on-chip up + board up + board down + on-chip down
        assert_eq!(cfg.lookahead(), Duration::from_ns(90));
    }

    #[test]
    fn occupancy_is_exported_in_metrics_and_layout_independent() {
        let mut cp = CheckPlane::enabled(1);
        let base = run_shard_sim_with(&small(), Some(1), &mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        let occ = &base.occupancy;
        assert_eq!(occ.windows, base.rounds);
        assert_eq!(occ.events, base.events);
        for shards in OCCUPANCY_WIDTHS {
            assert!(occ.speedup(shards) >= 1.0, "band {shards}");
        }
        // Satellite of ISSUE 7: the occupancy numbers live in the
        // standard metrics snapshot, not just a bench-only side channel.
        assert_eq!(
            base.metrics.counter("shard.occupancy.events"),
            Some(occ.events)
        );
        assert_eq!(
            base.metrics.counter("shard.occupancy.s4.crit_events"),
            Some(occ.band(4).expect("band 4").crit_events)
        );
        let mut cp = CheckPlane::enabled(1);
        let wide = run_shard_sim_with(&small(), Some(4), &mut cp);
        assert_eq!(wide.occupancy.to_json(), occ.to_json());
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let cfg = small();
        let mut cp = CheckPlane::enabled(1);
        let base = run_shard_sim_with(&cfg, None, &mut cp);
        let (out, wall) = run_shard_sim_observed(&cfg, &mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert_eq!(base.metrics.to_json(), out.metrics.to_json());
        assert_eq!(base.report(), out.report());
        assert!(wall.is_enabled());
        assert!(
            wall.phase_calls(ecoscale_sim::prof::Phase::Process) >= out.rounds,
            "every window's process phase is timed"
        );
    }
}
