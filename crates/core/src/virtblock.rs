//! The Virtualization block (Fig. 4).
//!
//! §4.1: ECOSCALE supports "fine-grain sharing of those FPGA resources,
//! where a function implemented in hardware can be 'called' by different
//! tasks or threads of an HPC application in parallel, through the
//! Virtualization block… a mechanism to execute multiple function calls
//! (from different virtual machines) in a fully pipelined fashion."
//!
//! [`VirtualizationBlock`] models an accelerator shared by N callers two
//! ways (experiment E5):
//!
//! * [`SharingMode::Pipelined`] — calls from different contexts interleave
//!   into the pipeline at the initiation interval; aggregate throughput
//!   holds until the pipeline saturates,
//! * [`SharingMode::Exclusive`] — classic time multiplexing: each caller
//!   takes the whole device, paying a context-switch (drain + state swap)
//!   between callers.

use ecoscale_fpga::AcceleratorModule;
use ecoscale_sim::Duration;

/// How callers share the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// Fine-grain: calls interleave in the pipeline.
    Pipelined,
    /// Coarse-grain: exclusive use with context switches.
    Exclusive {
        /// Cost of switching between callers (drain + state swap).
        switch: Duration,
    },
}

/// A shared accelerator instance.
///
/// # Example
///
/// ```
/// use ecoscale_core::{SharingMode, VirtualizationBlock};
/// use ecoscale_fpga::{AcceleratorModule, Bitstream, ModuleId, Resources};
///
/// let m = AcceleratorModule::new(
///     ModuleId(0), "f", Resources::new(500, 8, 8),
///     200_000_000, 1, 20,
///     Bitstream::synthesize(Resources::new(500, 8, 8), 1),
/// );
/// let vb = VirtualizationBlock::new(m);
/// let shared = vb.batch_completion(SharingMode::Pipelined, 8, 1000);
/// // 8 callers × 1000 items each, fully pipelined: ≈ 8000 cycles + fill
/// assert!(shared.as_us_f64() < 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualizationBlock {
    module: AcceleratorModule,
}

impl VirtualizationBlock {
    /// Wraps `module` for sharing.
    pub fn new(module: AcceleratorModule) -> VirtualizationBlock {
        VirtualizationBlock { module }
    }

    /// The wrapped module.
    pub fn module(&self) -> &AcceleratorModule {
        &self.module
    }

    /// Time until all of `callers` callers, each submitting
    /// `items_per_caller` items, have completed.
    pub fn batch_completion(
        &self,
        mode: SharingMode,
        callers: u64,
        items_per_caller: u64,
    ) -> Duration {
        if callers == 0 || items_per_caller == 0 {
            return Duration::ZERO;
        }
        match mode {
            SharingMode::Pipelined => {
                // one pipeline fill, then all items interleave at II
                self.module.batch_latency(callers * items_per_caller)
            }
            SharingMode::Exclusive { switch } => {
                // each caller: pipeline fill + items, plus a switch
                // between consecutive callers
                let per_caller = self.module.batch_latency(items_per_caller);
                per_caller * callers + switch * (callers - 1)
            }
        }
    }

    /// Aggregate throughput (items/s) for the whole caller set.
    pub fn aggregate_throughput(
        &self,
        mode: SharingMode,
        callers: u64,
        items_per_caller: u64,
    ) -> f64 {
        let t = self.batch_completion(mode, callers, items_per_caller);
        if t.is_zero() {
            return 0.0;
        }
        (callers * items_per_caller) as f64 / t.as_secs_f64()
    }

    /// Per-caller mean latency penalty of sharing versus having the
    /// device alone.
    pub fn sharing_penalty(&self, mode: SharingMode, callers: u64, items_per_caller: u64) -> f64 {
        let alone = self.batch_completion(mode, 1, items_per_caller);
        let shared = self.batch_completion(mode, callers, items_per_caller);
        if alone.is_zero() {
            return 1.0;
        }
        shared / alone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_fpga::{Bitstream, ModuleId, Resources};

    fn block(ii: u32, depth: u32) -> VirtualizationBlock {
        VirtualizationBlock::new(AcceleratorModule::new(
            ModuleId(0),
            "f",
            Resources::new(500, 8, 8),
            200_000_000,
            ii,
            depth,
            Bitstream::synthesize(Resources::new(500, 8, 8), 1),
        ))
    }

    const SWITCH: SharingMode = SharingMode::Exclusive {
        switch: Duration::from_us(5),
    };

    #[test]
    fn pipelined_sharing_sustains_throughput() {
        let vb = block(1, 20);
        let t1 = vb.aggregate_throughput(SharingMode::Pipelined, 1, 10_000);
        let t16 = vb.aggregate_throughput(SharingMode::Pipelined, 16, 10_000);
        // aggregate throughput stays ≈ flat (the device was already
        // saturated by one caller at II=1)
        assert!((t16 / t1 - 1.0).abs() < 0.05);
    }

    #[test]
    fn exclusive_sharing_pays_switches() {
        let vb = block(1, 20);
        let pipe = vb.batch_completion(SharingMode::Pipelined, 16, 1000);
        let excl = vb.batch_completion(SWITCH, 16, 1000);
        assert!(excl > pipe);
        // 15 switches × 5 us dominate the gap for small batches
        let gap = excl - pipe;
        assert!(gap > Duration::from_us(70));
    }

    #[test]
    fn penalty_scales_linearly_in_callers() {
        let vb = block(1, 20);
        let p4 = vb.sharing_penalty(SharingMode::Pipelined, 4, 1000);
        let p8 = vb.sharing_penalty(SharingMode::Pipelined, 8, 1000);
        assert!(p8 > p4);
        assert!(p4 > 3.0 && p4 < 5.0); // ≈ 4x work, shared fill
    }

    #[test]
    fn zero_cases() {
        let vb = block(1, 10);
        assert_eq!(
            vb.batch_completion(SharingMode::Pipelined, 0, 10),
            Duration::ZERO
        );
        assert_eq!(vb.batch_completion(SWITCH, 4, 0), Duration::ZERO);
        assert_eq!(vb.aggregate_throughput(SharingMode::Pipelined, 0, 0), 0.0);
    }

    #[test]
    fn module_accessor() {
        let vb = block(2, 10);
        assert_eq!(vb.module().initiation_interval(), 2);
    }

    #[test]
    fn single_caller_modes_agree_modulo_switches() {
        let vb = block(1, 20);
        let a = vb.batch_completion(SharingMode::Pipelined, 1, 500);
        let b = vb.batch_completion(SWITCH, 1, 500);
        assert_eq!(a, b);
    }
}
