//! The Execution History store.
//!
//! §4.2: "A history of the function calls as well as their execution time
//! is stored in a History file (Execution History block). The runtime
//! scheduler/daemon will read periodically the system status and the
//! History file in order to decide at runtime what functions should be
//! loaded on the reconfiguration block."

use std::collections::HashMap;

use ecoscale_sim::{Duration, Energy, OnlineStats};

use crate::device::DeviceClass;

/// One observed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Function name.
    pub function: String,
    /// Where it ran.
    pub device: DeviceClass,
    /// The input features it ran with.
    pub features: Vec<f64>,
    /// Observed execution time.
    pub time: Duration,
    /// Observed energy.
    pub energy: Energy,
}

/// The per-worker history store, bounded per (function, device) key.
///
/// # Example
///
/// ```
/// use ecoscale_runtime::{DeviceClass, ExecutionHistory};
/// use ecoscale_sim::{Duration, Energy};
///
/// let mut h = ExecutionHistory::new(64);
/// h.record("gemm", DeviceClass::Cpu, vec![128.0], Duration::from_us(900), Energy::from_uj(50.0));
/// assert_eq!(h.call_count("gemm"), 1);
/// assert_eq!(h.samples("gemm", DeviceClass::Cpu).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionHistory {
    capacity_per_key: usize,
    samples: HashMap<(String, DeviceClass), Vec<Sample>>,
    /// Lifetime online time statistics per key. Raw samples above are
    /// capacity-bounded (they exist for the feature-based prediction
    /// models); the aggregates answer [`ExecutionHistory::mean_time`]
    /// in O(1) without re-summing.
    time_stats: HashMap<(String, DeviceClass), OnlineStats>,
    call_counts: HashMap<String, u64>,
}

impl ExecutionHistory {
    /// Creates a history keeping at most `capacity_per_key` samples per
    /// (function, device) pair.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_per_key` is zero.
    pub fn new(capacity_per_key: usize) -> ExecutionHistory {
        assert!(capacity_per_key > 0, "history needs capacity");
        ExecutionHistory {
            capacity_per_key,
            samples: HashMap::new(),
            time_stats: HashMap::new(),
            call_counts: HashMap::new(),
        }
    }

    /// Records one execution.
    pub fn record(
        &mut self,
        function: &str,
        device: DeviceClass,
        features: Vec<f64>,
        time: Duration,
        energy: Energy,
    ) {
        *self.call_counts.entry(function.to_owned()).or_insert(0) += 1;
        let key = (function.to_owned(), device);
        self.time_stats
            .entry(key.clone())
            .or_default()
            .record(time.as_ps() as f64);
        let v = self.samples.entry(key).or_default();
        if v.len() == self.capacity_per_key {
            v.remove(0); // drop the oldest
        }
        v.push(Sample {
            function: function.to_owned(),
            device,
            features,
            time,
            energy,
        });
    }

    /// All retained samples for `(function, device)`, oldest first.
    pub fn samples(&self, function: &str, device: DeviceClass) -> &[Sample] {
        self.samples
            .get(&(function.to_owned(), device))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total calls of `function` ever recorded (across devices, not
    /// bounded by capacity).
    pub fn call_count(&self, function: &str) -> u64 {
        self.call_counts.get(function).copied().unwrap_or(0)
    }

    /// Function names ordered by descending call count (the daemon's
    /// candidate list).
    pub fn hottest_functions(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .call_counts
            .iter()
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Mean observed time of `(function, device)` over every execution
    /// ever recorded, if any exist. Served from the online aggregate in
    /// O(1); unlike [`ExecutionHistory::samples`] it is not bounded by
    /// the per-key capacity.
    pub fn mean_time(&self, function: &str, device: DeviceClass) -> Option<Duration> {
        self.time_stats(function, device)
            .map(|s| Duration::from_ps(s.mean().round() as u64))
    }

    /// Lifetime [`OnlineStats`] of execution time in picoseconds for
    /// `(function, device)`, if any executions were recorded.
    pub fn time_stats(&self, function: &str, device: DeviceClass) -> Option<&OnlineStats> {
        self.time_stats
            .get(&(function.to_owned(), device))
            .filter(|s| s.count() > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> ExecutionHistory {
        ExecutionHistory::new(3)
    }

    #[test]
    fn record_and_query() {
        let mut hist = h();
        hist.record(
            "f",
            DeviceClass::Cpu,
            vec![1.0],
            Duration::from_us(10),
            Energy::from_uj(1.0),
        );
        hist.record(
            "f",
            DeviceClass::FpgaLocal,
            vec![1.0],
            Duration::from_us(2),
            Energy::from_uj(0.2),
        );
        assert_eq!(hist.call_count("f"), 2);
        assert_eq!(hist.samples("f", DeviceClass::Cpu).len(), 1);
        assert_eq!(hist.samples("f", DeviceClass::FpgaLocal).len(), 1);
        assert_eq!(hist.samples("f", DeviceClass::FpgaRemote).len(), 0);
        assert_eq!(hist.call_count("g"), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut hist = h();
        for i in 0..5u64 {
            hist.record(
                "f",
                DeviceClass::Cpu,
                vec![i as f64],
                Duration::from_us(i),
                Energy::ZERO,
            );
        }
        let s = hist.samples("f", DeviceClass::Cpu);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].features, vec![2.0]);
        assert_eq!(s[2].features, vec![4.0]);
        // call count unaffected by eviction
        assert_eq!(hist.call_count("f"), 5);
    }

    #[test]
    fn hottest_functions_sorted() {
        let mut hist = h();
        for _ in 0..3 {
            hist.record(
                "hot",
                DeviceClass::Cpu,
                vec![],
                Duration::from_us(1),
                Energy::ZERO,
            );
        }
        hist.record(
            "cold",
            DeviceClass::Cpu,
            vec![],
            Duration::from_us(1),
            Energy::ZERO,
        );
        let top = hist.hottest_functions();
        assert_eq!(top[0].0, "hot");
        assert_eq!(top[0].1, 3);
        assert_eq!(top[1].0, "cold");
    }

    #[test]
    fn mean_time() {
        let mut hist = h();
        assert!(hist.mean_time("f", DeviceClass::Cpu).is_none());
        hist.record(
            "f",
            DeviceClass::Cpu,
            vec![],
            Duration::from_us(10),
            Energy::ZERO,
        );
        hist.record(
            "f",
            DeviceClass::Cpu,
            vec![],
            Duration::from_us(20),
            Energy::ZERO,
        );
        assert_eq!(
            hist.mean_time("f", DeviceClass::Cpu),
            Some(Duration::from_us(15))
        );
    }

    #[test]
    fn mean_time_covers_evicted_samples() {
        let mut hist = h(); // capacity 3
        for us in [10, 20, 30, 40, 50] {
            hist.record(
                "f",
                DeviceClass::Cpu,
                vec![],
                Duration::from_us(us),
                Energy::ZERO,
            );
        }
        // raw samples kept only for features; the mean is lifetime
        assert_eq!(hist.samples("f", DeviceClass::Cpu).len(), 3);
        assert_eq!(
            hist.mean_time("f", DeviceClass::Cpu),
            Some(Duration::from_us(30))
        );
        let s = hist.time_stats("f", DeviceClass::Cpu).unwrap();
        assert_eq!(s.count(), 5);
        assert_eq!(s.max(), Duration::from_us(50).as_ps() as f64);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        ExecutionHistory::new(0);
    }
}
