//! The Execution History store.
//!
//! §4.2: "A history of the function calls as well as their execution time
//! is stored in a History file (Execution History block). The runtime
//! scheduler/daemon will read periodically the system status and the
//! History file in order to decide at runtime what functions should be
//! loaded on the reconfiguration block."

use std::collections::HashMap;

use ecoscale_sim::{Duration, Energy, OnlineStats};

use crate::device::DeviceClass;

/// One observed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Function name.
    pub function: String,
    /// Where it ran.
    pub device: DeviceClass,
    /// The input features it ran with.
    pub features: Vec<f64>,
    /// Observed execution time.
    pub time: Duration,
    /// Observed energy.
    pub energy: Energy,
}

/// The per-worker history store, bounded per (function, device) key.
///
/// # Example
///
/// ```
/// use ecoscale_runtime::{DeviceClass, ExecutionHistory};
/// use ecoscale_sim::{Duration, Energy};
///
/// let mut h = ExecutionHistory::new(64);
/// h.record("gemm", DeviceClass::Cpu, vec![128.0], Duration::from_us(900), Energy::from_uj(50.0));
/// assert_eq!(h.call_count("gemm"), 1);
/// assert_eq!(h.samples("gemm", DeviceClass::Cpu).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionHistory {
    capacity_per_key: usize,
    samples: HashMap<(String, DeviceClass), Vec<Sample>>,
    /// Lifetime online time statistics per key. Raw samples above are
    /// capacity-bounded (they exist for the feature-based prediction
    /// models); the aggregates answer [`ExecutionHistory::mean_time`]
    /// in O(1) without re-summing.
    time_stats: HashMap<(String, DeviceClass), OnlineStats>,
    call_counts: HashMap<String, u64>,
}

impl ExecutionHistory {
    /// Creates a history keeping at most `capacity_per_key` samples per
    /// (function, device) pair.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_per_key` is zero.
    pub fn new(capacity_per_key: usize) -> ExecutionHistory {
        assert!(capacity_per_key > 0, "history needs capacity");
        ExecutionHistory {
            capacity_per_key,
            samples: HashMap::new(),
            time_stats: HashMap::new(),
            call_counts: HashMap::new(),
        }
    }

    /// Records one execution.
    pub fn record(
        &mut self,
        function: &str,
        device: DeviceClass,
        features: Vec<f64>,
        time: Duration,
        energy: Energy,
    ) {
        *self.call_counts.entry(function.to_owned()).or_insert(0) += 1;
        let key = (function.to_owned(), device);
        self.time_stats
            .entry(key.clone())
            .or_default()
            .record(time.as_ps() as f64);
        let v = self.samples.entry(key).or_default();
        if v.len() == self.capacity_per_key {
            v.remove(0); // drop the oldest
        }
        v.push(Sample {
            function: function.to_owned(),
            device,
            features,
            time,
            energy,
        });
    }

    /// All retained samples for `(function, device)`, oldest first.
    pub fn samples(&self, function: &str, device: DeviceClass) -> &[Sample] {
        self.samples
            .get(&(function.to_owned(), device))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total calls of `function` ever recorded (across devices, not
    /// bounded by capacity).
    pub fn call_count(&self, function: &str) -> u64 {
        self.call_counts.get(function).copied().unwrap_or(0)
    }

    /// Function names ordered by descending call count (the daemon's
    /// candidate list).
    pub fn hottest_functions(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .call_counts
            .iter()
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Mean observed time of `(function, device)` over every execution
    /// ever recorded, if any exist. Served from the online aggregate in
    /// O(1); unlike [`ExecutionHistory::samples`] it is not bounded by
    /// the per-key capacity.
    pub fn mean_time(&self, function: &str, device: DeviceClass) -> Option<Duration> {
        self.time_stats(function, device)
            .map(|s| Duration::from_ps(s.mean().round() as u64))
    }

    /// Lifetime [`OnlineStats`] of execution time in picoseconds for
    /// `(function, device)`, if any executions were recorded.
    pub fn time_stats(&self, function: &str, device: DeviceClass) -> Option<&OnlineStats> {
        self.time_stats
            .get(&(function.to_owned(), device))
            .filter(|s| s.count() > 0)
    }

    /// Serializes the history: retained samples and lifetime aggregates
    /// keyed by `(function, device)` in sorted order, then the lifetime
    /// call counts. The per-key capacity is structural and not written.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        let mut keys: Vec<&(String, DeviceClass)> = self.samples.keys().collect();
        keys.sort();
        w.put_usize(keys.len());
        for key in keys {
            w.put_str(&key.0);
            w.put_u8(device_tag(key.1));
            let v = &self.samples[key];
            w.put_usize(v.len());
            for s in v {
                w.put_str(&s.function);
                w.put_u8(device_tag(s.device));
                w.put_usize(s.features.len());
                for f in &s.features {
                    w.put_f64(*f);
                }
                w.put_duration(s.time);
                s.energy.snapshot(w);
            }
        }
        let mut keys: Vec<&(String, DeviceClass)> = self.time_stats.keys().collect();
        keys.sort();
        w.put_usize(keys.len());
        for key in keys {
            w.put_str(&key.0);
            w.put_u8(device_tag(key.1));
            self.time_stats[key].snapshot(w);
        }
        let mut names: Vec<&String> = self.call_counts.keys().collect();
        names.sort();
        w.put_usize(names.len());
        for name in names {
            w.put_str(name);
            w.put_u64(self.call_counts[name]);
        }
    }

    /// Overlays state captured by [`ExecutionHistory::snapshot_state`]
    /// onto this history, which must have the same per-key capacity.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncated or unsorted data, an
    /// unknown device tag, or a key holding more samples than capacity.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "history claims {n} sample keys but only {} bytes remain",
                r.remaining()
            )));
        }
        self.samples.clear();
        let mut prev: Option<(String, DeviceClass)> = None;
        for i in 0..n {
            let key = (r.get_str()?, device_from_tag(r.get_u8()?)?);
            if prev.as_ref().is_some_and(|p| *p >= key) {
                return Err(malformed(format!("sample keys unsorted at index {i}")));
            }
            prev = Some(key.clone());
            let m = r.get_usize()?;
            if m > self.capacity_per_key {
                return Err(malformed(format!(
                    "key holds {m} samples, capacity is {}",
                    self.capacity_per_key
                )));
            }
            let mut v = Vec::with_capacity(m);
            for _ in 0..m {
                let function = r.get_str()?;
                let device = device_from_tag(r.get_u8()?)?;
                let k = r.get_usize()?;
                if k > r.remaining() {
                    return Err(malformed(format!(
                        "sample claims {k} features but only {} bytes remain",
                        r.remaining()
                    )));
                }
                let mut features = Vec::with_capacity(k);
                for _ in 0..k {
                    features.push(r.get_f64()?);
                }
                v.push(Sample {
                    function,
                    device,
                    features,
                    time: r.get_duration()?,
                    energy: Energy::restore(r)?,
                });
            }
            self.samples.insert(key, v);
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "history claims {n} aggregate keys but only {} bytes remain",
                r.remaining()
            )));
        }
        self.time_stats.clear();
        let mut prev: Option<(String, DeviceClass)> = None;
        for i in 0..n {
            let key = (r.get_str()?, device_from_tag(r.get_u8()?)?);
            if prev.as_ref().is_some_and(|p| *p >= key) {
                return Err(malformed(format!("aggregate keys unsorted at index {i}")));
            }
            prev = Some(key.clone());
            self.time_stats.insert(key, OnlineStats::restore(r)?);
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "history claims {n} call counts but only {} bytes remain",
                r.remaining()
            )));
        }
        self.call_counts.clear();
        let mut prev: Option<String> = None;
        for i in 0..n {
            let name = r.get_str()?;
            if prev.as_ref().is_some_and(|p| *p >= name) {
                return Err(malformed(format!("call counts unsorted at index {i}")));
            }
            prev = Some(name.clone());
            let c = r.get_u64()?;
            self.call_counts.insert(name, c);
        }
        Ok(())
    }
}

/// Stable one-byte tag for [`DeviceClass`] in snapshots.
fn device_tag(d: DeviceClass) -> u8 {
    match d {
        DeviceClass::Cpu => 0,
        DeviceClass::FpgaLocal => 1,
        DeviceClass::FpgaRemote => 2,
    }
}

fn device_from_tag(tag: u8) -> Result<DeviceClass, ecoscale_sim::RestoreError> {
    match tag {
        0 => Ok(DeviceClass::Cpu),
        1 => Ok(DeviceClass::FpgaLocal),
        2 => Ok(DeviceClass::FpgaRemote),
        other => Err(ecoscale_sim::snap::malformed(format!(
            "unknown device tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> ExecutionHistory {
        ExecutionHistory::new(3)
    }

    #[test]
    fn record_and_query() {
        let mut hist = h();
        hist.record(
            "f",
            DeviceClass::Cpu,
            vec![1.0],
            Duration::from_us(10),
            Energy::from_uj(1.0),
        );
        hist.record(
            "f",
            DeviceClass::FpgaLocal,
            vec![1.0],
            Duration::from_us(2),
            Energy::from_uj(0.2),
        );
        assert_eq!(hist.call_count("f"), 2);
        assert_eq!(hist.samples("f", DeviceClass::Cpu).len(), 1);
        assert_eq!(hist.samples("f", DeviceClass::FpgaLocal).len(), 1);
        assert_eq!(hist.samples("f", DeviceClass::FpgaRemote).len(), 0);
        assert_eq!(hist.call_count("g"), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut hist = h();
        for i in 0..5u64 {
            hist.record(
                "f",
                DeviceClass::Cpu,
                vec![i as f64],
                Duration::from_us(i),
                Energy::ZERO,
            );
        }
        let s = hist.samples("f", DeviceClass::Cpu);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].features, vec![2.0]);
        assert_eq!(s[2].features, vec![4.0]);
        // call count unaffected by eviction
        assert_eq!(hist.call_count("f"), 5);
    }

    #[test]
    fn hottest_functions_sorted() {
        let mut hist = h();
        for _ in 0..3 {
            hist.record(
                "hot",
                DeviceClass::Cpu,
                vec![],
                Duration::from_us(1),
                Energy::ZERO,
            );
        }
        hist.record(
            "cold",
            DeviceClass::Cpu,
            vec![],
            Duration::from_us(1),
            Energy::ZERO,
        );
        let top = hist.hottest_functions();
        assert_eq!(top[0].0, "hot");
        assert_eq!(top[0].1, 3);
        assert_eq!(top[1].0, "cold");
    }

    #[test]
    fn mean_time() {
        let mut hist = h();
        assert!(hist.mean_time("f", DeviceClass::Cpu).is_none());
        hist.record(
            "f",
            DeviceClass::Cpu,
            vec![],
            Duration::from_us(10),
            Energy::ZERO,
        );
        hist.record(
            "f",
            DeviceClass::Cpu,
            vec![],
            Duration::from_us(20),
            Energy::ZERO,
        );
        assert_eq!(
            hist.mean_time("f", DeviceClass::Cpu),
            Some(Duration::from_us(15))
        );
    }

    #[test]
    fn mean_time_covers_evicted_samples() {
        let mut hist = h(); // capacity 3
        for us in [10, 20, 30, 40, 50] {
            hist.record(
                "f",
                DeviceClass::Cpu,
                vec![],
                Duration::from_us(us),
                Energy::ZERO,
            );
        }
        // raw samples kept only for features; the mean is lifetime
        assert_eq!(hist.samples("f", DeviceClass::Cpu).len(), 3);
        assert_eq!(
            hist.mean_time("f", DeviceClass::Cpu),
            Some(Duration::from_us(30))
        );
        let s = hist.time_stats("f", DeviceClass::Cpu).unwrap();
        assert_eq!(s.count(), 5);
        assert_eq!(s.max(), Duration::from_us(50).as_ps() as f64);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        ExecutionHistory::new(0);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut hist = h();
        for i in 0..5u64 {
            hist.record(
                "f",
                DeviceClass::Cpu,
                vec![i as f64, 2.0],
                Duration::from_us(10 + i),
                Energy::from_uj(i as f64),
            );
        }
        hist.record(
            "g",
            DeviceClass::FpgaLocal,
            vec![],
            Duration::from_us(3),
            Energy::ZERO,
        );
        let mut w = ecoscale_sim::SnapWriter::new();
        hist.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = h();
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(
            bytes,
            w2.into_bytes(),
            "restored history re-serializes differently"
        );
        assert_eq!(fresh.call_count("f"), 5);
        assert_eq!(fresh.samples("f", DeviceClass::Cpu).len(), 3);
        assert_eq!(
            fresh.mean_time("f", DeviceClass::Cpu),
            hist.mean_time("f", DeviceClass::Cpu)
        );

        // a smaller-capacity history must refuse keys over its capacity
        let mut small = ExecutionHistory::new(2);
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        assert!(small.restore_state(&mut r).is_err());

        for cut in 0..bytes.len() {
            let mut p = h();
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                p.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }
}
