//! Global arrays over the UNIMEM partitioned address space.
//!
//! §4.4: "We will treat the global memory in each compute node as a
//! collection of NUMA domains accessible via the UNIMEM interface" with
//! "topology-aware global memory allocators in these domains". A
//! [`PgasSpace`] owns each node's partition; a [`GlobalArray`] is an
//! element-addressable array block- or cyclically-distributed across the
//! partitions.

use std::error::Error;
use std::fmt;

use ecoscale_mem::{GlobalAddr, UnimemSystem};
use ecoscale_noc::{Network, NodeId, Topology};
use ecoscale_sim::{Energy, Time};

/// How a global array's elements map to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous blocks: element `i` lives on node `i / ceil(len/nodes)`.
    Block,
    /// Round-robin: element `i` lives on node `i % nodes`.
    Cyclic,
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The requested node's partition is exhausted.
    PartitionFull {
        /// Which node.
        node: NodeId,
    },
    /// Zero-length allocations are meaningless.
    ZeroLength,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::PartitionFull { node } => write!(f, "partition of {node} is full"),
            AllocError::ZeroLength => f.write_str("allocation length must be positive"),
        }
    }
}

impl Error for AllocError {}

/// The per-node partition allocator (bump allocation; the experiments
/// never free).
#[derive(Debug, Clone)]
pub struct PgasSpace {
    partition_bytes: u64,
    next: Vec<u64>,
}

impl PgasSpace {
    /// Creates a space of `nodes` partitions of `partition_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `partition_bytes` is zero.
    pub fn new(nodes: usize, partition_bytes: u64) -> PgasSpace {
        assert!(nodes > 0, "need at least one node");
        assert!(partition_bytes > 0, "partitions must be non-empty");
        PgasSpace {
            partition_bytes,
            next: vec![0; nodes],
        }
    }

    /// Number of partitions.
    pub fn nodes(&self) -> usize {
        self.next.len()
    }

    /// Bytes remaining in `node`'s partition.
    pub fn free_bytes(&self, node: NodeId) -> u64 {
        self.partition_bytes - self.next[node.0]
    }

    /// Allocates `bytes` in `node`'s partition.
    ///
    /// # Errors
    ///
    /// [`AllocError::PartitionFull`] or [`AllocError::ZeroLength`].
    pub fn alloc(&mut self, node: NodeId, bytes: u64) -> Result<GlobalAddr, AllocError> {
        if bytes == 0 {
            return Err(AllocError::ZeroLength);
        }
        if self.next[node.0] + bytes > self.partition_bytes {
            return Err(AllocError::PartitionFull { node });
        }
        let addr = GlobalAddr::new(node, self.next[node.0]);
        self.next[node.0] += bytes;
        Ok(addr)
    }

    /// Allocates an `elems`-element array of `elem_bytes`-byte elements
    /// distributed per `dist` across all partitions.
    ///
    /// # Errors
    ///
    /// Any per-partition allocation failure.
    pub fn alloc_array(
        &mut self,
        elems: u64,
        elem_bytes: u64,
        dist: Distribution,
    ) -> Result<GlobalArray, AllocError> {
        if elems == 0 || elem_bytes == 0 {
            return Err(AllocError::ZeroLength);
        }
        let nodes = self.nodes() as u64;
        let per_node = elems.div_ceil(nodes);
        let mut parts = Vec::with_capacity(nodes as usize);
        for n in 0..nodes {
            let here = match dist {
                Distribution::Block => per_node.min(elems.saturating_sub(n * per_node)),
                Distribution::Cyclic => elems / nodes + u64::from(n < elems % nodes),
            };
            let base = self.alloc(NodeId(n as usize), (here.max(1)) * elem_bytes)?;
            parts.push(base);
        }
        Ok(GlobalArray {
            elems,
            elem_bytes,
            dist,
            parts,
        })
    }
}

/// A distributed global array.
///
/// # Example
///
/// ```
/// use ecoscale_noc::NodeId;
/// use ecoscale_runtime::{Distribution, PgasSpace};
///
/// let mut space = PgasSpace::new(4, 1 << 20);
/// let arr = space.alloc_array(1000, 8, Distribution::Block).unwrap();
/// assert_eq!(arr.home_of(0), NodeId(0));
/// assert_eq!(arr.home_of(999), NodeId(3));
/// ```
#[derive(Debug, Clone)]
pub struct GlobalArray {
    elems: u64,
    elem_bytes: u64,
    dist: Distribution,
    parts: Vec<GlobalAddr>,
}

impl GlobalArray {
    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.elems
    }

    /// Returns `true` if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems == 0
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// The distribution.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// The node holding element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn home_of(&self, i: u64) -> NodeId {
        assert!(
            i < self.elems,
            "index {i} out of bounds (len {})",
            self.elems
        );
        let nodes = self.parts.len() as u64;
        match self.dist {
            Distribution::Block => {
                let per_node = self.elems.div_ceil(nodes);
                NodeId((i / per_node) as usize)
            }
            Distribution::Cyclic => NodeId((i % nodes) as usize),
        }
    }

    /// The global address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn addr_of(&self, i: u64) -> GlobalAddr {
        let home = self.home_of(i);
        let nodes = self.parts.len() as u64;
        let local_index = match self.dist {
            Distribution::Block => {
                let per_node = self.elems.div_ceil(nodes);
                i % per_node
            }
            Distribution::Cyclic => i / nodes,
        };
        self.parts[home.0].add(local_index * self.elem_bytes)
    }

    /// Reads element `i` from `node` through UNIMEM, returning the
    /// completion time and energy.
    pub fn get<T: Topology>(
        &self,
        mem: &mut UnimemSystem,
        net: &mut Network<T>,
        now: Time,
        node: NodeId,
        i: u64,
    ) -> (Time, Energy) {
        let a = mem.read(net, now, node, self.addr_of(i), self.elem_bytes);
        (a.completion, a.energy)
    }

    /// Writes element `i` from `node` through UNIMEM.
    pub fn put<T: Topology>(
        &self,
        mem: &mut UnimemSystem,
        net: &mut Network<T>,
        now: Time,
        node: NodeId,
        i: u64,
    ) -> (Time, Energy) {
        let a = mem.write(net, now, node, self.addr_of(i), self.elem_bytes);
        (a.completion, a.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_mem::{CacheConfig, DramModel};
    use ecoscale_noc::{NetworkConfig, TreeTopology};

    #[test]
    fn bump_allocation() {
        let mut s = PgasSpace::new(2, 100);
        let a = s.alloc(NodeId(0), 40).unwrap();
        let b = s.alloc(NodeId(0), 40).unwrap();
        assert_eq!(a.offset(), 0);
        assert_eq!(b.offset(), 40);
        assert_eq!(s.free_bytes(NodeId(0)), 20);
        assert_eq!(
            s.alloc(NodeId(0), 40),
            Err(AllocError::PartitionFull { node: NodeId(0) })
        );
        assert_eq!(s.alloc(NodeId(1), 100).unwrap().home(), NodeId(1));
        assert_eq!(s.alloc(NodeId(1), 0), Err(AllocError::ZeroLength));
    }

    #[test]
    fn block_distribution_geometry() {
        let mut s = PgasSpace::new(4, 1 << 20);
        let arr = s.alloc_array(100, 8, Distribution::Block).unwrap();
        // 25 per node
        assert_eq!(arr.home_of(0), NodeId(0));
        assert_eq!(arr.home_of(24), NodeId(0));
        assert_eq!(arr.home_of(25), NodeId(1));
        assert_eq!(arr.home_of(99), NodeId(3));
        assert_eq!(arr.addr_of(26).offset() - arr.addr_of(25).offset(), 8);
        assert_eq!(arr.len(), 100);
        assert!(!arr.is_empty());
        assert_eq!(arr.elem_bytes(), 8);
        assert_eq!(arr.distribution(), Distribution::Block);
    }

    #[test]
    fn cyclic_distribution_geometry() {
        let mut s = PgasSpace::new(4, 1 << 20);
        let arr = s.alloc_array(10, 8, Distribution::Cyclic).unwrap();
        assert_eq!(arr.home_of(0), NodeId(0));
        assert_eq!(arr.home_of(1), NodeId(1));
        assert_eq!(arr.home_of(5), NodeId(1));
        // element 5 is node 1's second element
        let base = arr.addr_of(1);
        assert_eq!(arr.addr_of(5).offset(), base.offset() + 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn home_of_bounds_checked() {
        let mut s = PgasSpace::new(2, 1 << 20);
        let arr = s.alloc_array(4, 8, Distribution::Block).unwrap();
        arr.home_of(4);
    }

    #[test]
    fn get_put_costs_follow_locality() {
        let mut s = PgasSpace::new(4, 1 << 20);
        let arr = s.alloc_array(64, 8, Distribution::Block).unwrap();
        let mut mem = UnimemSystem::new(4, CacheConfig::l1_default(), DramModel::default());
        let mut net = Network::new(TreeTopology::new(&[4]), NetworkConfig::default());
        // element 0 lives on node 0: local access from node 0
        let (t_local, _) = arr.get(&mut mem, &mut net, Time::ZERO, NodeId(0), 0);
        // remote access from node 3
        let (t_remote, _) = arr.get(&mut mem, &mut net, t_local, NodeId(3), 0);
        assert!(t_remote.since(t_local) > t_local.since(Time::ZERO));
        let (t_put, e) = arr.put(&mut mem, &mut net, t_remote, NodeId(3), 0);
        assert!(t_put > t_remote);
        assert!(e.as_pj() > 0.0);
    }

    #[test]
    fn distributed_alloc_exhausts_cleanly() {
        let mut s = PgasSpace::new(2, 64);
        // 16 elements × 8 bytes = 64 per node for block over 2 nodes
        assert!(s.alloc_array(16, 8, Distribution::Block).is_ok());
        assert!(matches!(
            s.alloc_array(16, 8, Distribution::Block),
            Err(AllocError::PartitionFull { .. })
        ));
    }
}
