//! The OpenCL-flavoured host API, extended the three ways §4.2 lists.
//!
//! 1. **PGAS scoping**: buffers carry a [`BufferScope`] — pinned to one
//!    worker's partition, or partitioned/replicated across the node's
//!    NUMA domains (the "new data scoping and consistency abstractions").
//! 2. **Scalable transfers**: moving data between partitions costs what
//!    the UNIMEM + interconnect models say, not a flat PCIe number.
//! 3. **Distributed command queues**: one in-order queue per worker
//!    ("multiple workers, distributed command queues and transparent
//!    command queue management across workers"), with cross-queue event
//!    dependencies.
//!
//! This module is the *host-side* object model used by the examples; full
//! accelerator dispatch (UNILOGIC, virtualization) lives in
//! `ecoscale-core`.

use ecoscale_mem::DramModel;
use ecoscale_noc::{Network, NetworkConfig, NodeId, Topology, TreeTopology};
use ecoscale_sim::{Energy, Time};

use crate::device::CpuModel;
use crate::pgas::{Distribution, PgasSpace};

/// The ECOSCALE platform: a Compute Node of `workers` workers on a tree
/// interconnect.
#[derive(Debug, Clone)]
pub struct Platform {
    fanouts: Vec<usize>,
    workers: usize,
}

impl Platform {
    /// Creates a platform over a tree of the given per-level fanouts.
    pub fn new(fanouts: &[usize]) -> Platform {
        let topo = TreeTopology::new(fanouts);
        Platform {
            fanouts: fanouts.to_vec(),
            workers: topo.num_nodes(),
        }
    }

    /// Platform name, OpenCL style.
    pub fn name(&self) -> &'static str {
        "ECOSCALE"
    }

    /// Number of worker devices.
    pub fn num_devices(&self) -> usize {
        self.workers
    }

    /// Creates an execution context with `partition_bytes` of global
    /// memory per worker.
    pub fn create_context(&self, partition_bytes: u64) -> Context {
        Context {
            net: Network::new(TreeTopology::new(&self.fanouts), NetworkConfig::default()),
            space: PgasSpace::new(self.workers, partition_bytes),
            cpu: CpuModel::a53_default(),
            queues: Vec::new(),
            events: Vec::new(),
            buffers: Vec::new(),
            energy: Energy::ZERO,
        }
    }
}

/// Where a buffer's bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferScope {
    /// Entirely in one worker's partition.
    Device(NodeId),
    /// Distributed across all partitions.
    Partitioned(Distribution),
}

/// Handle to a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer(usize);

/// Handle to an in-order command queue pinned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandQueue(usize);

/// Handle to a completion event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(usize);

/// A kernel signature for cost purposes: per-item work.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelObject {
    /// Kernel name.
    pub name: String,
    /// Arithmetic ops per item.
    pub flops_per_item: u64,
    /// Memory ops per item.
    pub mem_ops_per_item: u64,
}

impl KernelObject {
    /// Creates a kernel signature.
    pub fn new(name: &str, flops_per_item: u64, mem_ops_per_item: u64) -> KernelObject {
        KernelObject {
            name: name.to_owned(),
            flops_per_item,
            mem_ops_per_item,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BufferMeta {
    bytes: u64,
    scope: BufferScope,
}

/// The execution context: devices, memory, queues, events.
///
/// # Example
///
/// ```
/// use ecoscale_noc::NodeId;
/// use ecoscale_runtime::{BufferScope, Distribution, KernelObject, Platform};
///
/// let platform = Platform::new(&[4, 4]);
/// let mut ctx = platform.create_context(64 << 20);
/// let q0 = ctx.create_queue(NodeId(0));
/// let buf = ctx.create_buffer(1 << 20, BufferScope::Partitioned(Distribution::Block)).unwrap();
/// let k = KernelObject::new("stencil", 6, 5);
/// let w = ctx.enqueue_write(q0, buf, &[]);
/// let run = ctx.enqueue_kernel(q0, &k, 100_000, &[buf], &[w]);
/// let done = ctx.finish(q0);
/// assert!(done >= ctx.event_time(run));
/// ```
#[derive(Debug)]
pub struct Context {
    net: Network<TreeTopology>,
    space: PgasSpace,
    cpu: CpuModel,
    /// per-queue (worker, available-at)
    queues: Vec<(NodeId, Time)>,
    events: Vec<Time>,
    buffers: Vec<BufferMeta>,
    energy: Energy,
}

impl Context {
    /// Creates an in-order queue on `worker`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn create_queue(&mut self, worker: NodeId) -> CommandQueue {
        assert!(
            worker.0 < self.space.nodes(),
            "worker {worker} out of range"
        );
        self.queues.push((worker, Time::ZERO));
        CommandQueue(self.queues.len() - 1)
    }

    /// Allocates a buffer under `scope`.
    ///
    /// # Errors
    ///
    /// Propagates partition exhaustion.
    pub fn create_buffer(
        &mut self,
        bytes: u64,
        scope: BufferScope,
    ) -> Result<Buffer, crate::pgas::AllocError> {
        match scope {
            BufferScope::Device(node) => {
                self.space.alloc(node, bytes)?;
            }
            BufferScope::Partitioned(dist) => {
                self.space.alloc_array(bytes.max(1), 1, dist)?;
            }
        }
        self.buffers.push(BufferMeta { bytes, scope });
        Ok(Buffer(self.buffers.len() - 1))
    }

    fn dep_time(&self, wait: &[EventId]) -> Time {
        wait.iter()
            .map(|e| self.events[e.0])
            .max()
            .unwrap_or(Time::ZERO)
    }

    fn push_event(&mut self, t: Time) -> EventId {
        self.events.push(t);
        EventId(self.events.len() - 1)
    }

    /// Host-to-partition population of `buf` (modelled as a DRAM stream
    /// at each holding partition).
    pub fn enqueue_write(&mut self, q: CommandQueue, buf: Buffer, wait: &[EventId]) -> EventId {
        let (worker, avail) = self.queues[q.0];
        let start = avail.max(self.dep_time(wait));
        let meta = self.buffers[buf.0];
        let dram = DramModel::default();
        let (lat, e) = dram.stream(meta.bytes);
        self.energy += e;
        let done = start + lat;
        let _ = worker;
        self.queues[q.0].1 = done;
        self.push_event(done)
    }

    /// Reads `buf` back to the host (same cost model as write).
    pub fn enqueue_read(&mut self, q: CommandQueue, buf: Buffer, wait: &[EventId]) -> EventId {
        self.enqueue_write(q, buf, wait)
    }

    /// Runs `kernel` over `items` items on `q`'s worker, touching `bufs`.
    ///
    /// Data that is not local to the worker (a `Device` buffer homed
    /// elsewhere; the remote shares of a partitioned buffer) is pulled
    /// over the interconnect first.
    pub fn enqueue_kernel(
        &mut self,
        q: CommandQueue,
        kernel: &KernelObject,
        items: u64,
        bufs: &[Buffer],
        wait: &[EventId],
    ) -> EventId {
        let (worker, avail) = self.queues[q.0];
        let mut start = avail.max(self.dep_time(wait));
        // pull remote data
        for b in bufs {
            let meta = self.buffers[b.0];
            match meta.scope {
                BufferScope::Device(home) if home != worker => {
                    let d = self.net.transfer(start, home, worker, meta.bytes);
                    self.energy += d.energy;
                    start = start.max(d.arrival);
                }
                BufferScope::Device(_) => {}
                BufferScope::Partitioned(_) => {
                    // each worker computes on its local share: only the
                    // halo (modelled as 2 cache lines) moves
                    let halo = 128;
                    let nodes = self.space.nodes();
                    let neighbor = NodeId((worker.0 + 1) % nodes);
                    if neighbor != worker {
                        let d = self.net.transfer(start, neighbor, worker, halo);
                        self.energy += d.energy;
                        start = start.max(d.arrival);
                    }
                }
            }
        }
        let (t, e) = self.cpu.exec(
            items * kernel.flops_per_item,
            items * kernel.mem_ops_per_item,
        );
        self.energy += e;
        let done = start + t;
        self.queues[q.0].1 = done;
        self.push_event(done)
    }

    /// Inserts a cross-queue barrier: `q` waits for `events`.
    pub fn enqueue_barrier(&mut self, q: CommandQueue, events: &[EventId]) -> EventId {
        let (_, avail) = self.queues[q.0];
        let t = avail.max(self.dep_time(events));
        self.queues[q.0].1 = t;
        self.push_event(t)
    }

    /// Blocks until everything on `q` completed; returns that time.
    pub fn finish(&self, q: CommandQueue) -> Time {
        self.queues[q.0].1
    }

    /// Completion time of an event.
    pub fn event_time(&self, e: EventId) -> Time {
        self.events[e.0]
    }

    /// Total energy charged so far.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Interconnect traffic so far.
    pub fn traffic(&self) -> &ecoscale_noc::TrafficStats {
        self.net.stats()
    }

    /// The interconnect topology backing this context.
    pub fn workers(&self) -> usize {
        self.net.topology().num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Platform::new(&[4, 4]).create_context(64 << 20)
    }

    #[test]
    fn platform_shape() {
        let p = Platform::new(&[8, 4]);
        assert_eq!(p.name(), "ECOSCALE");
        assert_eq!(p.num_devices(), 32);
    }

    #[test]
    fn in_order_queue_semantics() {
        let mut c = ctx();
        let q = c.create_queue(NodeId(0));
        let b = c
            .create_buffer(1 << 16, BufferScope::Device(NodeId(0)))
            .unwrap();
        let k = KernelObject::new("k", 10, 2);
        let e1 = c.enqueue_kernel(q, &k, 1000, &[b], &[]);
        let e2 = c.enqueue_kernel(q, &k, 1000, &[b], &[]);
        assert!(c.event_time(e2) > c.event_time(e1));
        assert_eq!(c.finish(q), c.event_time(e2));
    }

    #[test]
    fn cross_queue_dependency() {
        let mut c = ctx();
        let q0 = c.create_queue(NodeId(0));
        let q1 = c.create_queue(NodeId(5));
        let b = c
            .create_buffer(4096, BufferScope::Device(NodeId(0)))
            .unwrap();
        let k = KernelObject::new("k", 100, 10);
        let produce = c.enqueue_kernel(q0, &k, 10_000, &[b], &[]);
        // q1 waits on q0's event
        let consume = c.enqueue_kernel(q1, &k, 10, &[b], &[produce]);
        assert!(c.event_time(consume) > c.event_time(produce));
    }

    #[test]
    fn remote_device_buffer_costs_transfer() {
        let mut c = ctx();
        let q = c.create_queue(NodeId(0));
        let local = c
            .create_buffer(1 << 20, BufferScope::Device(NodeId(0)))
            .unwrap();
        let remote = c
            .create_buffer(1 << 20, BufferScope::Device(NodeId(15)))
            .unwrap();
        let k = KernelObject::new("k", 1, 1);
        let e_local = c.enqueue_kernel(q, &k, 1000, &[local], &[]);
        let t0 = c.event_time(e_local);
        let e_remote = c.enqueue_kernel(q, &k, 1000, &[remote], &[]);
        let remote_cost = c.event_time(e_remote).since(t0);
        let local_cost = t0.since(Time::ZERO);
        assert!(remote_cost > local_cost);
        assert!(c.traffic().messages() > 0);
    }

    #[test]
    fn partitioned_buffer_moves_only_halo() {
        let mut c = ctx();
        let q = c.create_queue(NodeId(3));
        let part = c
            .create_buffer(16 << 20, BufferScope::Partitioned(Distribution::Block))
            .unwrap();
        let k = KernelObject::new("stencil", 6, 5);
        c.enqueue_kernel(q, &k, 1_000, &[part], &[]);
        // only the halo crossed the network, not 16 MiB
        assert!(c.traffic().payload_bytes() < 10_000);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut c = ctx();
        let q = c.create_queue(NodeId(0));
        let b = c
            .create_buffer(1 << 20, BufferScope::Device(NodeId(0)))
            .unwrap();
        let w = c.enqueue_write(q, b, &[]);
        let r = c.enqueue_read(q, b, &[w]);
        assert!(c.event_time(r) > c.event_time(w));
        assert!(c.energy().as_uj() > 0.0);
    }

    #[test]
    fn barrier_synchronizes() {
        let mut c = ctx();
        let q0 = c.create_queue(NodeId(0));
        let q1 = c.create_queue(NodeId(1));
        let b = c
            .create_buffer(1 << 18, BufferScope::Device(NodeId(0)))
            .unwrap();
        let k = KernelObject::new("k", 50, 5);
        let e0 = c.enqueue_kernel(q0, &k, 100_000, &[b], &[]);
        let bar = c.enqueue_barrier(q1, &[e0]);
        assert_eq!(c.event_time(bar), c.event_time(e0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn queue_bounds_checked() {
        ctx().create_queue(NodeId(99));
    }

    #[test]
    fn buffer_allocation_failure_surfaces() {
        let mut c = Platform::new(&[2]).create_context(1024);
        let r = c.create_buffer(1 << 20, BufferScope::Device(NodeId(0)));
        assert!(r.is_err());
    }
}
