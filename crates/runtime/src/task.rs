//! Tasks: the unit of scheduled work.
//!
//! A [`Task`] is one call of a named function with an input described by a
//! feature vector (input/output size, shape, access pattern — the model
//! inputs §4.2 says the prediction models are trained on).

use core::fmt;

use ecoscale_noc::NodeId;

/// Identifies a task within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One schedulable function call.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    id: TaskId,
    function: String,
    features: Vec<f64>,
    /// Total arithmetic operations this call performs.
    flops: u64,
    /// Total memory operations this call performs.
    mem_ops: u64,
    /// The node whose partition holds the task's data (locality hint).
    data_home: NodeId,
}

impl Task {
    /// Creates a task.
    pub fn new(
        id: TaskId,
        function: &str,
        features: Vec<f64>,
        flops: u64,
        mem_ops: u64,
        data_home: NodeId,
    ) -> Task {
        Task {
            id,
            function: function.to_owned(),
            features,
            flops,
            mem_ops,
            data_home,
        }
    }

    /// The task id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The called function's name.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The input feature vector (model inputs).
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// Total arithmetic operations.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Total memory operations.
    pub fn mem_ops(&self) -> u64 {
        self.mem_ops
    }

    /// Where the task's data lives.
    pub fn data_home(&self) -> NodeId {
        self.data_home
    }

    /// Primary size feature (first element, 0 if absent) — the dominant
    /// model input in the paper's input-dependent models.
    pub fn size(&self) -> f64 {
        self.features.first().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Task::new(TaskId(3), "gemm", vec![256.0, 2.0], 1_000, 300, NodeId(4));
        assert_eq!(t.id(), TaskId(3));
        assert_eq!(t.function(), "gemm");
        assert_eq!(t.features(), &[256.0, 2.0]);
        assert_eq!(t.flops(), 1_000);
        assert_eq!(t.mem_ops(), 300);
        assert_eq!(t.data_home(), NodeId(4));
        assert_eq!(t.size(), 256.0);
        assert_eq!(t.id().to_string(), "T3");
    }

    #[test]
    fn empty_features_size_zero() {
        let t = Task::new(TaskId(0), "f", vec![], 1, 1, NodeId(0));
        assert_eq!(t.size(), 0.0);
    }
}
