//! Input-dependent execution-time and energy prediction models.
//!
//! §4.2: ECOSCALE builds "input-dependent models of execution time and
//! energy to select the best device to execute a function", trained on
//! recorded runs and applied to unseen inputs. This module provides the
//! regression family ([`LinearModel`], ridge-regularized least squares
//! over the feature vector) and an instance-based fallback
//! ([`KnnPredictor`]) for small histories, both behind the [`Predictor`]
//! trait the scheduler consumes.

use crate::device::DeviceClass;
use crate::history::{ExecutionHistory, Sample};

use ecoscale_sim::Duration;

/// A trainable scalar predictor over feature vectors.
pub trait Predictor {
    /// Fits the model on `(features, target)` pairs. A model may refuse
    /// (keep its previous state) if the data is insufficient.
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]);

    /// Predicts the target for `x`, or `None` if the model is unfitted.
    fn predict(&self, x: &[f64]) -> Option<f64>;
}

/// Ridge-regularized linear least squares with a bias term.
///
/// # Example
///
/// ```
/// use ecoscale_runtime::{LinearModel, Predictor};
///
/// // y = 3 + 2·x
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
/// let mut m = LinearModel::new();
/// m.fit(&xs, &ys);
/// let y = m.predict(&[100.0]).expect("fitted");
/// assert!((y - 203.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearModel {
    /// weights\[0\] = bias, weights[1..] = per-feature slopes
    weights: Vec<f64>,
}

impl LinearModel {
    /// Creates an unfitted model.
    pub fn new() -> LinearModel {
        LinearModel::default()
    }

    /// The fitted weights (bias first), empty when unfitted.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Solves `A·w = b` in place by Gaussian elimination with partial
/// pivoting. Returns `None` for singular systems.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let (pivot, max) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("no NaN in normal matrix"))?;
        if max < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let (pivot_rows, elim_rows) = a.split_at_mut(col + 1);
        let prow = &pivot_rows[col];
        for (off, row) in elim_rows.iter_mut().enumerate() {
            let f = row[col] / prow[col];
            for (x, p) in row[col..].iter_mut().zip(&prow[col..]) {
                *x -= f * p;
            }
            b[col + 1 + off] -= f * b[col];
        }
    }
    let mut w = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in (r + 1)..n {
            acc -= a[r][c] * w[c];
        }
        w[r] = acc / a[r][r];
    }
    Some(w)
}

impl Predictor for LinearModel {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        if xs.is_empty() {
            return;
        }
        let d = xs[0].len() + 1; // bias
        if xs.len() < d {
            return; // underdetermined: keep previous weights
        }
        // normal equations with ridge regularization
        let lambda = 1e-8;
        let mut ata = vec![vec![0.0; d]; d];
        let mut atb = vec![0.0; d];
        for (x, &y) in xs.iter().zip(ys) {
            assert_eq!(x.len() + 1, d, "inconsistent feature dimension");
            let mut row = Vec::with_capacity(d);
            row.push(1.0);
            row.extend_from_slice(x);
            for i in 0..d {
                for j in 0..d {
                    ata[i][j] += row[i] * row[j];
                }
                atb[i] += row[i] * y;
            }
        }
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += lambda;
        }
        if let Some(w) = solve(ata, atb) {
            self.weights = w;
        }
    }

    fn predict(&self, x: &[f64]) -> Option<f64> {
        if self.weights.is_empty() {
            return None;
        }
        assert_eq!(
            x.len() + 1,
            self.weights.len(),
            "feature dimension mismatch"
        );
        let mut y = self.weights[0];
        for (w, v) in self.weights[1..].iter().zip(x) {
            y += w * v;
        }
        Some(y)
    }
}

/// k-nearest-neighbour prediction (Euclidean distance, mean of the k
/// nearest targets). Useful before enough samples accumulate for
/// regression.
#[derive(Debug, Clone)]
pub struct KnnPredictor {
    k: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl KnnPredictor {
    /// Creates a k-NN predictor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> KnnPredictor {
        assert!(k > 0, "k must be positive");
        KnnPredictor {
            k,
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }
}

impl Predictor for KnnPredictor {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len());
        self.xs = xs.to_vec();
        self.ys = ys.to_vec();
    }

    fn predict(&self, x: &[f64]) -> Option<f64> {
        if self.xs.is_empty() {
            return None;
        }
        let mut dists: Vec<(f64, f64)> = self
            .xs
            .iter()
            .zip(&self.ys)
            .map(|(xi, &yi)| {
                let d: f64 = xi.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, yi)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN distances"));
        let k = self.k.min(dists.len());
        Some(dists[..k].iter().map(|(_, y)| y).sum::<f64>() / k as f64)
    }
}

/// Fits a time predictor for `(function, device)` from the history and
/// predicts the execution time for `features`: regression when ≥ 8
/// samples, k-NN when ≥ 1, `None` on an empty history.
pub fn predict_time(
    history: &ExecutionHistory,
    function: &str,
    device: DeviceClass,
    features: &[f64],
) -> Option<Duration> {
    let samples: &[Sample] = history.samples(function, device);
    if samples.is_empty() {
        return None;
    }
    let xs: Vec<Vec<f64>> = samples.iter().map(|s| s.features.clone()).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.time.as_ns_f64()).collect();
    let y = if samples.len() >= 8 {
        let mut m = LinearModel::new();
        m.fit(&xs, &ys);
        m.predict(features).or_else(|| {
            let mut knn = KnnPredictor::new(3);
            knn.fit(&xs, &ys);
            knn.predict(features)
        })?
    } else {
        let mut knn = KnnPredictor::new(3);
        knn.fit(&xs, &ys);
        knn.predict(features)?
    };
    Some(Duration::from_ns_f64(y.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_sim::Energy;

    #[test]
    fn linear_recovers_plane() {
        // y = 1 + 2a + 3b
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..6 {
            for b in 0..6 {
                xs.push(vec![a as f64, b as f64]);
                ys.push(1.0 + 2.0 * a as f64 + 3.0 * b as f64);
            }
        }
        let mut m = LinearModel::new();
        m.fit(&xs, &ys);
        assert!((m.predict(&[10.0, 10.0]).unwrap() - 51.0).abs() < 1e-6);
        let w = m.weights();
        assert!((w[0] - 1.0).abs() < 1e-6);
        assert!((w[1] - 2.0).abs() < 1e-6);
        assert!((w[2] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn linear_unfitted_returns_none() {
        let m = LinearModel::new();
        assert_eq!(m.predict(&[1.0]), None);
    }

    #[test]
    fn linear_refuses_underdetermined() {
        let mut m = LinearModel::new();
        m.fit(&[vec![1.0, 2.0]], &[3.0]); // 1 sample, 3 unknowns
        assert_eq!(m.predict(&[1.0, 2.0]), None);
    }

    #[test]
    fn linear_handles_noise() {
        // y ≈ 5x with small deterministic perturbation
        let xs: Vec<Vec<f64>> = (1..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (1..40)
            .map(|i| 5.0 * i as f64 + ((i * 7919) % 13) as f64 * 0.01)
            .collect();
        let mut m = LinearModel::new();
        m.fit(&xs, &ys);
        let y = m.predict(&[100.0]).unwrap();
        assert!((y - 500.0).abs() < 2.0, "prediction {y}");
    }

    #[test]
    fn knn_interpolates() {
        let mut knn = KnnPredictor::new(2);
        knn.fit(&[vec![0.0], vec![10.0], vec![20.0]], &[0.0, 100.0, 200.0]);
        // nearest to 11: 10 -> 100 and 20 -> 200; mean 150
        assert_eq!(knn.predict(&[11.0]), Some(150.0));
        // exact hit dominated by k=2 mean
        let one = KnnPredictor::new(1);
        assert_eq!(one.predict(&[5.0]), None); // unfitted
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn knn_zero_k_rejected() {
        KnnPredictor::new(0);
    }

    #[test]
    fn predict_time_uses_history() {
        let mut h = ExecutionHistory::new(64);
        // linear relation: time_ns = 100 * size
        for size in 1..=20u64 {
            h.record(
                "f",
                DeviceClass::Cpu,
                vec![size as f64],
                Duration::from_ns(100 * size),
                Energy::ZERO,
            );
        }
        let t = predict_time(&h, "f", DeviceClass::Cpu, &[50.0]).unwrap();
        assert!((t.as_ns_f64() - 5000.0).abs() < 10.0);
        // unknown function: None
        assert!(predict_time(&h, "g", DeviceClass::Cpu, &[1.0]).is_none());
    }

    #[test]
    fn predict_time_small_history_falls_back_to_knn() {
        let mut h = ExecutionHistory::new(64);
        h.record(
            "f",
            DeviceClass::FpgaLocal,
            vec![8.0],
            Duration::from_us(8),
            Energy::ZERO,
        );
        h.record(
            "f",
            DeviceClass::FpgaLocal,
            vec![16.0],
            Duration::from_us(16),
            Energy::ZERO,
        );
        let t = predict_time(&h, "f", DeviceClass::FpgaLocal, &[12.0]).unwrap();
        assert!(t >= Duration::from_us(8) && t <= Duration::from_us(16));
    }

    #[test]
    fn solve_detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }
}
