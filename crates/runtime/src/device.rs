//! Execution-cost models for the devices a function can run on.
//!
//! Each ECOSCALE Worker offers (at least) two execution engines: its CPU
//! and its reconfigurable block — plus, through UNILOGIC, every *other*
//! Worker's reconfigurable block. The runtime's device-selection problem
//! (§4.2) is choosing among these per call.

use core::fmt;

use ecoscale_fpga::AcceleratorModule;
use ecoscale_sim::{Duration, Energy};

/// The classes of execution engine the scheduler chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceClass {
    /// The Worker's own CPU.
    Cpu,
    /// The Worker's own reconfigurable block (cached, coherent).
    FpgaLocal,
    /// Another Worker's reconfigurable block reached over UNILOGIC
    /// (cache disabled — ACE-lite path, Fig. 4).
    FpgaRemote,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceClass::Cpu => "cpu",
            DeviceClass::FpgaLocal => "fpga-local",
            DeviceClass::FpgaRemote => "fpga-remote",
        })
    }
}

/// An in-order-ish CPU cost model (Cortex-A53 class).
///
/// # Example
///
/// ```
/// use ecoscale_runtime::CpuModel;
///
/// let cpu = CpuModel::a53_default();
/// let (t, e) = cpu.exec(1_000_000, 200_000);
/// assert!(t.as_us_f64() > 100.0);
/// assert!(e.as_uj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Core clock.
    pub clock_hz: u64,
    /// Sustained floating-point ops per cycle.
    pub flops_per_cycle: f64,
    /// Sustained memory ops per cycle (cache-resident).
    pub mem_ops_per_cycle: f64,
    /// Energy per executed operation.
    pub energy_per_op: Energy,
    /// Idle/static power share charged per second of busy time.
    pub static_energy_per_sec: Energy,
}

impl CpuModel {
    /// Cortex-A53-class defaults: 1.2 GHz, ~1 FLOP/cycle, ~70 pJ/op.
    pub fn a53_default() -> CpuModel {
        CpuModel {
            clock_hz: 1_200_000_000,
            flops_per_cycle: 1.0,
            mem_ops_per_cycle: 1.0,
            energy_per_op: Energy::from_pj(70.0),
            static_energy_per_sec: Energy::from_mj(150.0),
        }
    }

    /// Time and energy to execute `flops` arithmetic and `mem_ops` memory
    /// operations.
    pub fn exec(&self, flops: u64, mem_ops: u64) -> (Duration, Energy) {
        let cycles = (flops as f64 / self.flops_per_cycle + mem_ops as f64 / self.mem_ops_per_cycle)
            .ceil() as u64;
        let t = Duration::from_cycles(cycles.max(1), self.clock_hz);
        let e = self.energy_per_op * (flops + mem_ops) as f64
            + self.static_energy_per_sec * t.as_secs_f64();
        (t, e)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::a53_default()
    }
}

/// Accelerator execution cost derived from a synthesized module.
///
/// The FPGA datapath retires one hot-loop iteration per `II` cycles;
/// energy per operation is roughly an order of magnitude below the CPU's
/// (the premise of reconfigurable HPC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaExecModel {
    /// Energy per retired kernel operation.
    pub energy_per_op: Energy,
    /// Static energy per second of busy fabric.
    pub static_energy_per_sec: Energy,
}

impl Default for FpgaExecModel {
    fn default() -> Self {
        FpgaExecModel {
            energy_per_op: Energy::from_pj(5.0),
            static_energy_per_sec: Energy::from_mj(80.0),
        }
    }
}

impl FpgaExecModel {
    /// Time and energy for `module` to process `iterations` hot-loop
    /// iterations each performing `ops_per_iter` operations.
    pub fn exec(
        &self,
        module: &AcceleratorModule,
        iterations: u64,
        ops_per_iter: u64,
    ) -> (Duration, Energy) {
        let t = module.batch_latency(iterations);
        let e = self.energy_per_op * (iterations * ops_per_iter) as f64
            + self.static_energy_per_sec * t.as_secs_f64();
        (t, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_fpga::{Bitstream, ModuleId, Resources};

    fn module(ii: u32) -> AcceleratorModule {
        AcceleratorModule::new(
            ModuleId(0),
            "k",
            Resources::new(500, 8, 16),
            200_000_000,
            ii,
            20,
            Bitstream::synthesize(Resources::new(500, 8, 16), 3),
        )
    }

    #[test]
    fn cpu_time_scales_with_work() {
        let cpu = CpuModel::a53_default();
        let (t1, e1) = cpu.exec(1000, 0);
        let (t2, e2) = cpu.exec(2000, 0);
        assert!(t2 > t1);
        assert!(e2 > e1);
        // 1000 cycles at 1.2 GHz ≈ 833 ns
        assert!((t1.as_ns_f64() - 833.0).abs() < 2.0);
    }

    #[test]
    fn cpu_mem_ops_cost_too() {
        let cpu = CpuModel::a53_default();
        let (t_flops, _) = cpu.exec(1000, 0);
        let (t_both, _) = cpu.exec(1000, 1000);
        assert!(t_both > t_flops);
    }

    #[test]
    fn fpga_pipelined_beats_cpu_on_throughput() {
        // The §3 claim territory: a pipelined datapath retires one
        // iteration/cycle at 200 MHz while the CPU needs tens of cycles
        // per iteration.
        let cpu = CpuModel::a53_default();
        let fpga = FpgaExecModel::default();
        let m = module(1);
        let iterations = 1_000_000u64;
        let ops_per_iter = 20u64;
        let (t_cpu, e_cpu) = cpu.exec(iterations * ops_per_iter, iterations * 2);
        let (t_fpga, e_fpga) = fpga.exec(&m, iterations, ops_per_iter);
        let speedup = t_cpu / t_fpga;
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(e_fpga < e_cpu);
    }

    #[test]
    fn unpipelined_module_is_slower() {
        let fpga = FpgaExecModel::default();
        let (t1, _) = fpga.exec(&module(1), 10_000, 10);
        let (t8, _) = fpga.exec(&module(8), 10_000, 10);
        assert!(t8 > t1 * 6);
    }

    #[test]
    fn device_class_display() {
        assert_eq!(DeviceClass::Cpu.to_string(), "cpu");
        assert_eq!(DeviceClass::FpgaLocal.to_string(), "fpga-local");
        assert_eq!(DeviceClass::FpgaRemote.to_string(), "fpga-remote");
    }

    #[test]
    fn zero_work_costs_minimum() {
        let cpu = CpuModel::a53_default();
        let (t, _) = cpu.exec(0, 0);
        assert!(t > Duration::ZERO);
    }
}
