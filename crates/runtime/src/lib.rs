//! The ECOSCALE runtime system (§4.2, §4.4).
//!
//! The paper extends OpenCL in three directions — PGAS data scoping,
//! scalable inter-partition data movement, and on-demand hardware
//! acceleration — and drives them with an intelligent per-worker
//! scheduler. This crate implements that runtime against the simulation
//! substrate:
//!
//! * [`device`] — CPU and accelerator execution cost models,
//! * [`task`] — the unit of scheduled work (a kernel call with features),
//! * [`history`] — the Execution History store (Fig. 5/6),
//! * [`model`] — input-dependent execution-time/energy prediction
//!   (least-squares regression + k-NN fallback) used to "judiciously and
//!   dynamically select and distribute functions for hardware
//!   acceleration",
//! * [`sched`] — per-worker work queues, Lazy-Scheduling-style \[9\]
//!   distribution, and centralized/random baselines,
//! * [`graph`] — fork/join task graphs with locality-aware list
//!   scheduling (§4.1 "execute, fork, and join tasks"),
//! * [`daemon`] — the runtime daemon deciding which functions to load
//!   onto each reconfigurable block (benefit-cost over the history),
//! * [`resilience`] — recovery policy for injected faults: bounded
//!   retry with exponential backoff, software fallback, reconfig-repair
//!   and quarantine (the FaultPlane's runtime half),
//! * [`serve`] — ServePlane: multi-tenant open-loop request serving
//!   (deterministic workload generation, admission control with bounded
//!   queues and token buckets, a batching dispatcher, SLO accounting),
//! * [`opencl`] — the OpenCL-flavoured object model with PGAS scoping and
//!   distributed command queues,
//! * [`mpi`] — the inter-Compute-Node MPI layer (point-to-point and
//!   collectives, topology-aware costs),
//! * [`pgas`] — global arrays over UNIMEM partitions.

pub mod daemon;
pub mod device;
pub mod graph;
pub mod history;
pub mod model;
pub mod mpi;
pub mod opencl;
pub mod pgas;
pub mod resilience;
pub mod sched;
pub mod serve;
pub mod task;

pub use daemon::{DaemonConfig, ReconfigDaemon, ReconfigError};
pub use device::{CpuModel, DeviceClass, FpgaExecModel};
pub use graph::{GraphRun, TaskGraph};
pub use history::{ExecutionHistory, Sample};
pub use model::{KnnPredictor, LinearModel, Predictor};
pub use mpi::{MpiComm, MpiStats};
pub use opencl::{Buffer, BufferScope, CommandQueue, Context, KernelObject, Platform};
pub use pgas::{Distribution, GlobalArray, PgasSpace};
pub use resilience::{Backoff, Domain, ResilienceConfig, ResilienceManager, RetryPolicy};
pub use sched::{
    partitioned_traces, skewed_trace, skewed_trace_with_spacing, ClusterSim, SchedPolicy,
    SchedReport, TaskSpec,
};
pub use serve::{
    Batch, JourneyOutcome, Request, RequestJourney, ServePlane, ServeSpec, ServeSpecError,
    ServingReport, SloTracker,
};
pub use task::{Task, TaskId};
