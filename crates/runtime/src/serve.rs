//! ServePlane: multi-tenant open-loop request serving over shared
//! accelerators.
//!
//! ECOSCALE's UNILOGIC blocks are *shared*: many concurrent callers from
//! many nodes invoke the same reconfigurable functions through the
//! runtime, which must arbitrate, queue, and place the work. This module
//! is the front half of that stack — the part that faces the traffic:
//!
//! * [`ServeSpec`] — a declarative serving workload (tenants, arrival
//!   rates, burst shape, queue bounds, token buckets, batching policy,
//!   SLO deadline) with a compact `key=value` textual form that
//!   round-trips through [`ServeSpec::parse`] / `Display`, mirroring
//!   [`CampaignSpec`](ecoscale_sim::fault::CampaignSpec),
//! * [`ArrivalGen`] — a deterministic open-loop arrival process per
//!   tenant: Poisson gaps from a salted [`SimRng`] stream, optionally
//!   modulated by periodic burst windows (piecewise-exponential draws,
//!   so the process is a pure function of the spec seed),
//! * [`ServePlane`] — admission control (bounded per-tenant FIFO queues
//!   plus fair-share token buckets; a full queue or an empty bucket
//!   *sheds* the request — rejected is not lost, every request is
//!   accounted admitted/completed/shed/failed), a batching dispatcher
//!   that coalesces same-kernel requests across tenants under a
//!   batch-size/latency-budget policy, and an SLO tracker (per-tenant
//!   latency histograms, deadline misses, goodput),
//! * [`ServingReport`] — the deterministic JSON/table export of one run,
//!   embedded as the `serving` section of the core `SystemReport`.
//!
//! The plane itself is backend-agnostic: it hands out [`Batch`]es and is
//! told when they complete. `ecoscale_core::serve_model` drives it
//! against `EcoscaleSystem::call`; under a FaultPlane campaign the
//! driver feeds resilience pressure back into admission via
//! [`ServePlane::set_pressure`], so degradation means shedding, not
//! stalling. Conservation and queue bounds are CheckPlane invariants
//! ([`invariant::SERVE_REQUEST_CONSERVED`],
//! [`invariant::SERVE_QUEUE_BOUNDED`]).

use core::fmt;
use std::collections::VecDeque;

use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::fault::{fmt_duration, parse_duration};
use ecoscale_sim::telem::TriggerKind;
use ecoscale_sim::{
    json, Duration, FlightRecorder, Histogram, MetricsRegistry, SimRng, Time, TimeSeries,
};

/// Component salts for [`ServeSpec::rng`]; the tenant id is folded in by
/// shifting it into the high word, like the per-worker SMMU streams.
pub mod salt {
    /// Per-tenant arrival process.
    pub const ARRIVAL: u64 = 1;
    /// Per-tenant kernel-mix selection.
    pub const MIX: u64 = 2;
}

/// Mixes a tenant id into a component salt so every tenant's streams are
/// independent and adding a tenant never perturbs another's.
fn tenant_salt(component: u64, tenant: u32) -> u64 {
    component ^ ((tenant as u64) << 32)
}

/// A declarative multi-tenant serving workload and policy.
///
/// # Textual form
///
/// Comma-separated `key=value` pairs; durations take `ns`/`us`/`ms`/`s`
/// suffixes, rates are per-second floats:
///
/// ```
/// use ecoscale_runtime::serve::ServeSpec;
///
/// let spec = ServeSpec::parse("seed=7,tenants=4,rate=250000,horizon=2ms,batch=8").unwrap();
/// assert_eq!(spec.tenants, 4);
/// let round_trip = ServeSpec::parse(&spec.to_string()).unwrap();
/// assert_eq!(spec, round_trip);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Root seed; every tenant forks independent streams from it.
    pub seed: u64,
    /// Number of tenants (independent traffic sources). At least 1.
    pub tenants: usize,
    /// Open-loop horizon: arrivals stop here, the drain continues.
    pub horizon: Duration,
    /// Mean request rate per tenant, requests/second.
    pub rate: f64,
    /// Burst factor: arrival rate multiplier inside burst windows
    /// (1 = no bursts).
    pub burst: f64,
    /// Burst window period (zero disables bursts).
    pub burst_every: Duration,
    /// Burst window length.
    pub burst_for: Duration,
    /// Per-tenant queue bound; a full queue sheds (backpressure).
    pub queue: usize,
    /// Token-bucket capacity per tenant (0 = bucket disabled).
    pub tokens: f64,
    /// Token refill rate per tenant, tokens/second.
    pub refill: f64,
    /// Maximum batch size the dispatcher coalesces (1 = batching off).
    pub batch: usize,
    /// Latency budget: a partial batch dispatches once its oldest
    /// request has waited this long.
    pub batch_wait: Duration,
    /// SLO deadline per request, measured from arrival.
    pub deadline: Duration,
    /// Fixed per-dispatch overhead (scheduling + invocation + SMMU
    /// setup), paid once per batch — what batching amortizes.
    pub overhead: Duration,
}

impl ServeSpec {
    /// The default serving workload: 4 tenants, moderate Poisson load,
    /// batching on, no bursts, no token buckets.
    pub fn base() -> ServeSpec {
        ServeSpec {
            seed: 42,
            tenants: 4,
            horizon: Duration::from_ms(2),
            rate: 150_000.0,
            burst: 1.0,
            burst_every: Duration::ZERO,
            burst_for: Duration::from_us(100),
            queue: 64,
            tokens: 0.0,
            refill: 0.0,
            batch: 8,
            batch_wait: Duration::from_us(4),
            deadline: Duration::from_us(250),
            overhead: Duration::from_us(5),
        }
    }

    /// This spec with batching disabled (batch size 1, no budget), the
    /// baseline the `bench_serve` goodput comparison runs against.
    pub fn batching_off(&self) -> ServeSpec {
        ServeSpec {
            batch: 1,
            batch_wait: Duration::ZERO,
            ..self.clone()
        }
    }

    /// Total offered load across all tenants, requests/second (mean;
    /// bursts redistribute arrivals inside the horizon, they do not add
    /// load).
    pub fn offered_per_sec(&self) -> f64 {
        self.rate * self.tenants as f64
    }

    /// Derives the independent RNG for one tenant's `component` stream
    /// (use the [`salt`] constants).
    pub fn rng(&self, component: u64, tenant: u32) -> SimRng {
        SimRng::seed_from(self.seed).fork(tenant_salt(component, tenant))
    }

    /// Parses the compact `key=value[,key=value...]` form. Unspecified
    /// keys keep their [`ServeSpec::base`] defaults.
    ///
    /// # Errors
    ///
    /// [`ServeSpecError`] names the offending pair.
    pub fn parse(s: &str) -> Result<ServeSpec, ServeSpecError> {
        let mut spec = ServeSpec::base();
        for pair in s.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once('=').ok_or_else(|| ServeSpecError {
                pair: pair.to_owned(),
                reason: "expected key=value".to_owned(),
            })?;
            let bad = |reason: &str| ServeSpecError {
                pair: pair.to_owned(),
                reason: reason.to_owned(),
            };
            let value = value.trim();
            match key.trim() {
                "seed" => spec.seed = value.parse().map_err(|_| bad("seed wants a u64"))?,
                "tenants" => {
                    spec.tenants = value.parse().map_err(|_| bad("tenants wants a count"))?;
                    if spec.tenants == 0 {
                        return Err(bad("tenants must be >= 1"));
                    }
                }
                "horizon" => {
                    spec.horizon = parse_duration(value).ok_or_else(|| bad("duration like 2ms"))?;
                    if spec.horizon.is_zero() {
                        return Err(bad("horizon must be > 0"));
                    }
                }
                "rate" => {
                    spec.rate = parse_rate(value).ok_or_else(|| bad("requests/second > 0"))?;
                }
                "burst" => {
                    spec.burst = value
                        .parse()
                        .ok()
                        .filter(|b: &f64| b.is_finite() && *b >= 1.0)
                        .ok_or_else(|| bad("factor >= 1"))?;
                }
                "burst_every" => {
                    spec.burst_every =
                        parse_duration(value).ok_or_else(|| bad("duration like 500us"))?;
                }
                "burst_for" => {
                    spec.burst_for =
                        parse_duration(value).ok_or_else(|| bad("duration like 100us"))?;
                }
                "queue" => {
                    spec.queue = value.parse().map_err(|_| bad("queue wants a bound"))?;
                    if spec.queue == 0 {
                        return Err(bad("queue must be >= 1"));
                    }
                }
                "tokens" => {
                    spec.tokens = value
                        .parse()
                        .ok()
                        .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                        .ok_or_else(|| bad("bucket capacity >= 0"))?;
                }
                "refill" => {
                    spec.refill = value
                        .parse()
                        .ok()
                        .filter(|r: &f64| r.is_finite() && *r >= 0.0)
                        .ok_or_else(|| bad("tokens/second >= 0"))?;
                }
                "batch" => {
                    spec.batch = value.parse().map_err(|_| bad("batch wants a size"))?;
                    if spec.batch == 0 {
                        return Err(bad("batch must be >= 1"));
                    }
                }
                "batch_wait" => {
                    spec.batch_wait =
                        parse_duration(value).ok_or_else(|| bad("duration like 4us"))?;
                }
                "deadline" => {
                    spec.deadline =
                        parse_duration(value).ok_or_else(|| bad("duration like 250us"))?;
                    if spec.deadline.is_zero() {
                        return Err(bad("deadline must be > 0"));
                    }
                }
                "overhead" => {
                    spec.overhead =
                        parse_duration(value).ok_or_else(|| bad("duration like 5us"))?;
                }
                other => {
                    return Err(ServeSpecError {
                        pair: pair.to_owned(),
                        reason: format!(
                            "unknown key `{other}` (want seed, tenants, horizon, rate, burst, \
                             burst_every, burst_for, queue, tokens, refill, batch, batch_wait, \
                             deadline, overhead)"
                        ),
                    });
                }
            }
        }
        Ok(spec)
    }
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec::base()
    }
}

impl fmt::Display for ServeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = ServeSpec::base();
        write!(
            f,
            "seed={},tenants={},horizon={},rate={}",
            self.seed,
            self.tenants,
            fmt_duration(self.horizon),
            self.rate
        )?;
        if self.burst > 1.0 && !self.burst_every.is_zero() {
            write!(
                f,
                ",burst={},burst_every={},burst_for={}",
                self.burst,
                fmt_duration(self.burst_every),
                fmt_duration(self.burst_for)
            )?;
        }
        write!(f, ",queue={}", self.queue)?;
        if self.tokens > 0.0 {
            write!(f, ",tokens={},refill={}", self.tokens, self.refill)?;
        }
        write!(f, ",batch={}", self.batch)?;
        if self.batch_wait != base.batch_wait {
            write!(f, ",batch_wait={}", fmt_duration(self.batch_wait))?;
        }
        write!(f, ",deadline={}", fmt_duration(self.deadline))?;
        if self.overhead != base.overhead {
            write!(f, ",overhead={}", fmt_duration(self.overhead))?;
        }
        Ok(())
    }
}

fn parse_rate(s: &str) -> Option<f64> {
    let v: f64 = s.parse().ok()?;
    (v.is_finite() && v > 0.0).then_some(v)
}

/// A malformed serve spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSpecError {
    /// The offending `key=value` pair.
    pub pair: String,
    /// What was expected.
    pub reason: String,
}

impl fmt::Display for ServeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad serve spec pair `{}`: {}", self.pair, self.reason)
    }
}

impl std::error::Error for ServeSpecError {}

/// One request: a kernel call on behalf of a tenant, stamped with its
/// arrival time, SLO deadline, and the causal span timestamps the
/// telemetry plane turns into [`RequestJourney`] exemplars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Monotone per-plane id (submission order; shed requests consume
    /// ids too, so every journey — including shed ones — is nameable).
    pub id: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Index into the serving kernel mix.
    pub kernel: u32,
    /// Open-loop arrival time (admission is decided at this instant).
    pub arrival: Time,
    /// When the dispatcher batched this request ([`Time::ZERO`] while
    /// still queued); the arrival→dispatch gap is the queue span.
    pub dispatched: Time,
    /// Absolute deadline (`arrival + spec.deadline`).
    pub deadline: Time,
}

/// Why admission shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's bounded queue was full (backpressure).
    QueueFull,
    /// The tenant's fair-share token bucket was empty.
    Throttled,
}

/// Terminal outcome of one request journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JourneyOutcome {
    /// Completed within its deadline.
    Completed,
    /// Completed past its deadline.
    DeadlineMiss,
    /// The backend call failed.
    Failed,
    /// Shed at admission on a full queue.
    ShedQueue,
    /// Shed at admission on an empty token bucket.
    ShedThrottle,
}

impl JourneyOutcome {
    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            JourneyOutcome::Completed => "completed",
            JourneyOutcome::DeadlineMiss => "deadline_miss",
            JourneyOutcome::Failed => "failed",
            JourneyOutcome::ShedQueue => "shed_queue",
            JourneyOutcome::ShedThrottle => "shed_throttle",
        }
    }

    fn tag(self) -> u8 {
        match self {
            JourneyOutcome::Completed => 0,
            JourneyOutcome::DeadlineMiss => 1,
            JourneyOutcome::Failed => 2,
            JourneyOutcome::ShedQueue => 3,
            JourneyOutcome::ShedThrottle => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<JourneyOutcome> {
        Some(match tag {
            0 => JourneyOutcome::Completed,
            1 => JourneyOutcome::DeadlineMiss,
            2 => JourneyOutcome::Failed,
            3 => JourneyOutcome::ShedQueue,
            4 => JourneyOutcome::ShedThrottle,
            _ => return None,
        })
    }
}

/// The full causal record of one request: every span timestamp from
/// admission to its terminal outcome. Exemplar journeys are what the
/// flight recorder dumps when a window breaches its SLO, so an operator
/// can name the concrete requests behind an anomalous percentile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestJourney {
    /// Plane-wide request id (submission order).
    pub id: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Kernel-mix index.
    pub kernel: u32,
    /// Arrival = admission-decision instant.
    pub arrival: Time,
    /// When the dispatcher batched it (equal to `arrival` for sheds).
    pub dispatched: Time,
    /// Terminal time: completion, failure, or the shed instant.
    pub completed: Time,
    /// Absolute SLO deadline.
    pub deadline: Time,
    /// How the journey ended.
    pub outcome: JourneyOutcome,
}

impl RequestJourney {
    /// One-line human-readable journey: id, owner, outcome, and the
    /// admit→queue→dispatch→complete span breakdown.
    pub fn describe(&self) -> String {
        let queued = self.dispatched.saturating_since(self.arrival).as_ns();
        let exec = self.completed.saturating_since(self.dispatched).as_ns();
        format!(
            "req {} tenant {} kernel {} outcome={} arrival={}ns queued={}ns exec={}ns \
             complete={}ns deadline={}ns",
            self.id,
            self.tenant,
            self.kernel,
            self.outcome.name(),
            self.arrival.as_ns(),
            queued,
            exec,
            self.completed.as_ns(),
            self.deadline.as_ns()
        )
    }
}

/// Window-scoped SLO accounting: outcome counts, the windowed latency
/// histogram, and a bounded first-K buffer of anomalous journeys
/// (deadline misses, sheds, failures). [`ServePlane`] feeds it on every
/// admission/completion; the drive loop drains it once per telemetry
/// window via [`ServePlane::telemetry_tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloTracker {
    exemplar_cap: usize,
    submitted: u64,
    admitted: u64,
    completed: u64,
    failed: u64,
    shed_queue: u64,
    shed_throttle: u64,
    deadline_miss: u64,
    goodput: u64,
    latency_ns: Histogram,
    exemplars: Vec<RequestJourney>,
}

/// One drained telemetry window of SLO state.
#[derive(Debug, Clone, PartialEq)]
pub struct SloWindow {
    /// Requests generated this window.
    pub submitted: u64,
    /// Requests admitted this window.
    pub admitted: u64,
    /// Requests completed this window.
    pub completed: u64,
    /// Requests whose backend call failed this window.
    pub failed: u64,
    /// Requests shed on a full queue this window.
    pub shed_queue: u64,
    /// Requests shed on an empty bucket this window.
    pub shed_throttle: u64,
    /// Completions past their deadline this window.
    pub deadline_miss: u64,
    /// Completions within their deadline this window.
    pub goodput: u64,
    /// Latencies of this window's completions.
    pub latency_ns: Histogram,
    /// First-K anomalous journeys of the window (deterministic event
    /// order).
    pub exemplars: Vec<RequestJourney>,
}

impl SloTracker {
    /// Default bound on exemplar journeys retained per window.
    pub const EXEMPLAR_CAP: usize = 4;

    fn new() -> SloTracker {
        SloTracker {
            exemplar_cap: Self::EXEMPLAR_CAP,
            submitted: 0,
            admitted: 0,
            completed: 0,
            failed: 0,
            shed_queue: 0,
            shed_throttle: 0,
            deadline_miss: 0,
            goodput: 0,
            latency_ns: Histogram::new(),
            exemplars: Vec::new(),
        }
    }

    fn exemplar(&mut self, j: RequestJourney) {
        if self.exemplars.len() < self.exemplar_cap {
            self.exemplars.push(j);
        }
    }

    fn observe(&mut self, j: RequestJourney) {
        match j.outcome {
            JourneyOutcome::Completed => {
                self.completed += 1;
                self.goodput += 1;
                self.latency_ns.record(j.completed.since(j.arrival).as_ns());
            }
            JourneyOutcome::DeadlineMiss => {
                self.completed += 1;
                self.deadline_miss += 1;
                self.latency_ns.record(j.completed.since(j.arrival).as_ns());
                self.exemplar(j);
            }
            JourneyOutcome::Failed => {
                self.failed += 1;
                self.exemplar(j);
            }
            JourneyOutcome::ShedQueue => {
                self.shed_queue += 1;
                self.exemplar(j);
            }
            JourneyOutcome::ShedThrottle => {
                self.shed_throttle += 1;
                self.exemplar(j);
            }
        }
    }

    /// Drains the window: returns the accumulated state and resets.
    fn take_window(&mut self) -> SloWindow {
        SloWindow {
            submitted: std::mem::take(&mut self.submitted),
            admitted: std::mem::take(&mut self.admitted),
            completed: std::mem::take(&mut self.completed),
            failed: std::mem::take(&mut self.failed),
            shed_queue: std::mem::take(&mut self.shed_queue),
            shed_throttle: std::mem::take(&mut self.shed_throttle),
            deadline_miss: std::mem::take(&mut self.deadline_miss),
            goodput: std::mem::take(&mut self.goodput),
            latency_ns: std::mem::replace(&mut self.latency_ns, Histogram::new()),
            exemplars: std::mem::take(&mut self.exemplars),
        }
    }

    fn snapshot(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        w.put_usize(self.exemplar_cap);
        w.put_u64(self.submitted);
        w.put_u64(self.admitted);
        w.put_u64(self.completed);
        w.put_u64(self.failed);
        w.put_u64(self.shed_queue);
        w.put_u64(self.shed_throttle);
        w.put_u64(self.deadline_miss);
        w.put_u64(self.goodput);
        self.latency_ns.snapshot(w);
        w.put_usize(self.exemplars.len());
        for j in &self.exemplars {
            w.put_u64(j.id);
            w.put_u32(j.tenant);
            w.put_u32(j.kernel);
            w.put_time(j.arrival);
            w.put_time(j.dispatched);
            w.put_time(j.completed);
            w.put_time(j.deadline);
            w.put_u8(j.outcome.tag());
        }
    }

    fn restore(
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<SloTracker, ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore as _;
        let exemplar_cap = r.get_usize()?;
        let mut s = SloTracker {
            exemplar_cap,
            submitted: r.get_u64()?,
            admitted: r.get_u64()?,
            completed: r.get_u64()?,
            failed: r.get_u64()?,
            shed_queue: r.get_u64()?,
            shed_throttle: r.get_u64()?,
            deadline_miss: r.get_u64()?,
            goodput: r.get_u64()?,
            latency_ns: Histogram::restore(r)?,
            exemplars: Vec::new(),
        };
        let n = r.get_usize()?;
        if n > exemplar_cap {
            return Err(malformed(format!(
                "slo tracker holds {n} exemplars, cap is {exemplar_cap}"
            )));
        }
        for _ in 0..n {
            s.exemplars.push(RequestJourney {
                id: r.get_u64()?,
                tenant: r.get_u32()?,
                kernel: r.get_u32()?,
                arrival: r.get_time()?,
                dispatched: r.get_time()?,
                completed: r.get_time()?,
                deadline: r.get_time()?,
                outcome: JourneyOutcome::from_tag(r.get_u8()?)
                    .ok_or_else(|| malformed("unknown journey outcome tag"))?,
            });
        }
        Ok(s)
    }
}

/// A coalesced dispatch unit: same-kernel requests batched across
/// tenants, executed as one backend call.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Kernel-mix index shared by every request in the batch.
    pub kernel: u32,
    /// The coalesced requests, admission order within each tenant.
    pub requests: Vec<Request>,
}

impl Batch {
    /// Requests in the batch (always >= 1).
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never, for dispatched batches).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// A deterministic open-loop arrival process: Poisson inter-arrival gaps
/// with mean `1/rate`, optionally modulated by periodic burst windows.
/// Draws are piecewise-exponential — a draw that crosses a phase
/// boundary is re-drawn from the boundary at the new rate — so the
/// process is a pure function of its [`SimRng`] stream.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    rng: SimRng,
    base_gap_ns: f64,
    burst: f64,
    every: Duration,
    dur: Duration,
    horizon: Time,
    next: Option<Time>,
}

impl ArrivalGen {
    /// The arrival stream of `tenant` under `spec`.
    pub fn new(spec: &ServeSpec, tenant: u32) -> ArrivalGen {
        let mut g = ArrivalGen {
            rng: spec.rng(salt::ARRIVAL, tenant),
            base_gap_ns: 1e9 / spec.rate,
            burst: spec.burst,
            every: spec.burst_every,
            dur: spec.burst_for,
            horizon: Time::ZERO + spec.horizon,
            next: None,
        };
        let first = g.draw_from(Time::ZERO);
        g.next = (first < g.horizon).then_some(first);
        g
    }

    fn modulated(&self) -> bool {
        self.burst > 1.0 && !self.every.is_zero()
    }

    /// Rate multiplier at `t` (inside a burst window or not).
    fn factor_at(&self, t: Time) -> f64 {
        if !self.modulated() {
            return 1.0;
        }
        let phase = t.as_ps() % self.every.as_ps();
        if phase < self.dur.as_ps() {
            self.burst
        } else {
            1.0
        }
    }

    fn draw_from(&mut self, t: Time) -> Time {
        let mut cur = t;
        loop {
            let gap = self
                .rng
                .gen_exp(self.base_gap_ns / self.factor_at(cur))
                .max(1.0);
            let cand = cur + Duration::from_ns_f64(gap);
            if !self.modulated() {
                return cand;
            }
            // piecewise: accept only draws that stay inside the phase
            let phase = cur.as_ps() % self.every.as_ps();
            let boundary_ps = if phase < self.dur.as_ps() {
                cur.as_ps() - phase + self.dur.as_ps()
            } else {
                cur.as_ps() - phase + self.every.as_ps()
            };
            if cand.as_ps() <= boundary_ps {
                return cand;
            }
            cur = Time::from_ps(boundary_ps);
        }
    }

    /// The next arrival, if the stream has not run past its horizon.
    pub fn peek(&self) -> Option<Time> {
        self.next
    }

    /// If the next arrival is at or before `now`, consumes it (drawing
    /// the follow-up; the stream ends at the horizon) and returns its
    /// time. Call in a loop to drain every arrival up to `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<Time> {
        let at = self.next?;
        if at > now {
            return None;
        }
        let next = self.draw_from(at);
        self.next = (next < self.horizon).then_some(next);
        Some(at)
    }
}

/// A fair-share token bucket on simulated time. Capacity 0 disables the
/// bucket (every take succeeds without any float work).
#[derive(Debug, Clone)]
struct TokenBucket {
    level: f64,
    cap: f64,
    refill_per_ns: f64,
    last: Time,
}

impl TokenBucket {
    fn new(spec: &ServeSpec) -> TokenBucket {
        TokenBucket {
            level: spec.tokens,
            cap: spec.tokens,
            refill_per_ns: spec.refill / 1e9,
            last: Time::ZERO,
        }
    }

    fn try_take(&mut self, now: Time) -> bool {
        if self.cap <= 0.0 {
            return true;
        }
        let dt = now.saturating_since(self.last).as_ns_f64();
        self.level = (self.level + dt * self.refill_per_ns).min(self.cap);
        self.last = now;
        if self.level >= 1.0 {
            self.level -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Per-tenant serving state: arrival stream, mix stream, bounded queue,
/// token bucket, and SLO accounting.
#[derive(Debug, Clone)]
struct TenantSlot {
    id: u32,
    gen: ArrivalGen,
    mix_rng: SimRng,
    queue: VecDeque<Request>,
    bucket: TokenBucket,
    // conservation ledger
    submitted: u64,
    admitted: u64,
    shed_queue: u64,
    shed_throttle: u64,
    completed: u64,
    failed: u64,
    // SLO ledger
    deadline_miss: u64,
    goodput: u64,
    latency_ns: Histogram,
}

impl TenantSlot {
    fn new(spec: &ServeSpec, id: u32) -> TenantSlot {
        TenantSlot {
            id,
            gen: ArrivalGen::new(spec, id),
            mix_rng: spec.rng(salt::MIX, id),
            queue: VecDeque::new(),
            bucket: TokenBucket::new(spec),
            submitted: 0,
            admitted: 0,
            shed_queue: 0,
            shed_throttle: 0,
            completed: 0,
            failed: 0,
            deadline_miss: 0,
            goodput: 0,
            latency_ns: Histogram::new(),
        }
    }

    fn shed(&self) -> u64 {
        self.shed_queue + self.shed_throttle
    }
}

/// The serving plane: workload generation, admission control, batching
/// and SLO accounting for one set of tenants. Backend-agnostic — a
/// driver pulls [`Batch`]es via [`ServePlane::take_batch`], runs them,
/// and reports completions via [`ServePlane::complete_batch`].
#[derive(Debug, Clone)]
pub struct ServePlane {
    spec: ServeSpec,
    mix_len: u32,
    tenants: Vec<TenantSlot>,
    cursor: usize,
    next_id: u64,
    in_flight: u64,
    pressure: bool,
    batches: u64,
    batched_requests: u64,
    batch_size: Histogram,
    slo: SloTracker,
}

impl ServePlane {
    /// A plane serving tenants `0..spec.tenants` drawing kernels from a
    /// mix of `mix_len` entries.
    ///
    /// # Panics
    ///
    /// Panics if `mix_len` is zero.
    pub fn new(spec: &ServeSpec, mix_len: usize) -> ServePlane {
        let ids: Vec<u32> = (0..spec.tenants as u32).collect();
        ServePlane::for_tenants(spec, mix_len, &ids)
    }

    /// A plane serving an explicit tenant subset (global ids), used when
    /// tenants are partitioned across serving cells. Streams are salted
    /// by global id, so a tenant's traffic is identical regardless of
    /// which cell hosts it.
    ///
    /// # Panics
    ///
    /// Panics if `mix_len` or `ids` is empty.
    pub fn for_tenants(spec: &ServeSpec, mix_len: usize, ids: &[u32]) -> ServePlane {
        assert!(mix_len > 0, "serving needs a non-empty kernel mix");
        assert!(!ids.is_empty(), "serving needs at least one tenant");
        ServePlane {
            spec: spec.clone(),
            mix_len: mix_len as u32,
            tenants: ids.iter().map(|&t| TenantSlot::new(spec, t)).collect(),
            cursor: 0,
            next_id: 0,
            in_flight: 0,
            pressure: false,
            batches: 0,
            batched_requests: 0,
            batch_size: Histogram::new(),
            slo: SloTracker::new(),
        }
    }

    /// The spec this plane serves.
    pub fn spec(&self) -> &ServeSpec {
        &self.spec
    }

    /// Effective per-tenant queue bound: halved (floor 1) under
    /// resilience pressure, so a degraded system sheds earlier instead
    /// of building deeper backlogs.
    fn effective_queue(&self) -> usize {
        if self.pressure {
            (self.spec.queue / 2).max(1)
        } else {
            self.spec.queue
        }
    }

    /// Feeds the resilience signal into admission: under pressure the
    /// queue bound halves. Degradation sheds load; it never stalls.
    pub fn set_pressure(&mut self, pressure: bool) {
        self.pressure = pressure;
    }

    /// Whether admission is currently under resilience pressure.
    pub fn pressure(&self) -> bool {
        self.pressure
    }

    /// Generates and admits every arrival at or before `now`. Admission
    /// is per-tenant (token bucket, then queue bound), each decision
    /// made at the request's own arrival instant. Every submission —
    /// shed or admitted — consumes an id, so shed journeys are nameable
    /// in flight-recorder exemplars.
    pub fn pop_arrivals(&mut self, now: Time) {
        let cap = self.effective_queue();
        for slot in &mut self.tenants {
            while let Some(at) = slot.gen.pop_due(now) {
                let rid = self.next_id;
                self.next_id += 1;
                slot.submitted += 1;
                self.slo.submitted += 1;
                let (tid, deadline) = (slot.id, at + self.spec.deadline);
                let shed = move |outcome| RequestJourney {
                    id: rid,
                    tenant: tid,
                    kernel: 0,
                    arrival: at,
                    dispatched: at,
                    completed: at,
                    deadline,
                    outcome,
                };
                if !slot.bucket.try_take(at) {
                    slot.shed_throttle += 1;
                    self.slo.observe(shed(JourneyOutcome::ShedThrottle));
                    continue;
                }
                if slot.queue.len() >= cap {
                    slot.shed_queue += 1;
                    self.slo.observe(shed(JourneyOutcome::ShedQueue));
                    continue;
                }
                let kernel = slot.mix_rng.gen_range_u64(0, self.mix_len as u64) as u32;
                slot.queue.push_back(Request {
                    id: rid,
                    tenant: slot.id,
                    kernel,
                    arrival: at,
                    dispatched: Time::ZERO,
                    deadline,
                });
                slot.admitted += 1;
                self.slo.admitted += 1;
            }
        }
    }

    /// The earliest future arrival across tenants, if any remain.
    pub fn next_arrival(&self) -> Option<Time> {
        self.tenants.iter().filter_map(|t| t.gen.peek()).min()
    }

    /// Total requests currently queued across tenants.
    pub fn queued(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Arrival time of the oldest queued request, if any.
    pub fn oldest_head(&self) -> Option<Time> {
        self.tenants
            .iter()
            .filter_map(|t| t.queue.front().map(|r| r.arrival))
            .min()
    }

    /// The earliest time a dispatch is allowed: immediately once a full
    /// batch has accumulated, otherwise when the oldest queued request
    /// exhausts the latency budget. `None` when nothing is queued.
    pub fn ripe_at(&self, now: Time) -> Option<Time> {
        if self.queued() == 0 {
            return None;
        }
        if self.queued() >= self.spec.batch {
            return Some(now);
        }
        Some(self.oldest_head().expect("queued > 0") + self.spec.batch_wait)
    }

    /// Whether a batch may dispatch right now.
    pub fn dispatch_ready(&self, now: Time) -> bool {
        self.ripe_at(now).is_some_and(|t| t <= now)
    }

    /// Takes the next batch: starting from a rotating tenant cursor
    /// (round-robin fairness), picks the first non-empty queue's head
    /// kernel, then coalesces head-of-line requests of that same kernel
    /// across tenants up to the batch bound. Returns `None` when nothing
    /// is queued.
    pub fn take_batch(&mut self, now: Time) -> Option<Batch> {
        let n = self.tenants.len();
        let start = (0..n)
            .map(|i| (self.cursor + i) % n)
            .find(|&i| !self.tenants[i].queue.is_empty())?;
        let kernel = self.tenants[start].queue.front().expect("non-empty").kernel;
        let mut requests = Vec::new();
        for off in 0..n {
            let i = (start + off) % n;
            while requests.len() < self.spec.batch {
                match self.tenants[i].queue.front() {
                    Some(r) if r.kernel == kernel => {
                        let mut r = self.tenants[i].queue.pop_front().expect("front");
                        r.dispatched = now;
                        requests.push(r);
                    }
                    _ => break,
                }
            }
            if requests.len() >= self.spec.batch {
                break;
            }
        }
        self.cursor = (start + 1) % n;
        self.in_flight += requests.len() as u64;
        self.batches += 1;
        self.batched_requests += requests.len() as u64;
        self.batch_size.record(requests.len() as u64);
        Some(Batch { kernel, requests })
    }

    /// Records a batch's completion at `completed_at`: per-request
    /// latency into the tenant histograms, deadline-miss vs goodput, and
    /// the in-flight ledger.
    pub fn complete_batch(&mut self, batch: &Batch, completed_at: Time) {
        for r in &batch.requests {
            let slot = self
                .tenants
                .iter_mut()
                .find(|t| t.id == r.tenant)
                .expect("request belongs to a hosted tenant");
            slot.completed += 1;
            slot.latency_ns
                .record(completed_at.since(r.arrival).as_ns());
            let outcome = if completed_at <= r.deadline {
                slot.goodput += 1;
                JourneyOutcome::Completed
            } else {
                slot.deadline_miss += 1;
                JourneyOutcome::DeadlineMiss
            };
            self.slo.observe(RequestJourney {
                id: r.id,
                tenant: r.tenant,
                kernel: r.kernel,
                arrival: r.arrival,
                dispatched: r.dispatched,
                completed: completed_at,
                deadline: r.deadline,
                outcome,
            });
        }
        self.in_flight -= batch.requests.len() as u64;
    }

    /// Records a batch whose backend call failed at `failed_at`. The
    /// requests stay accounted (failed, not lost) and leave the
    /// in-flight ledger.
    pub fn fail_batch(&mut self, batch: &Batch, failed_at: Time) {
        for r in &batch.requests {
            let slot = self
                .tenants
                .iter_mut()
                .find(|t| t.id == r.tenant)
                .expect("request belongs to a hosted tenant");
            slot.failed += 1;
            self.slo.observe(RequestJourney {
                id: r.id,
                tenant: r.tenant,
                kernel: r.kernel,
                arrival: r.arrival,
                dispatched: r.dispatched,
                completed: failed_at,
                deadline: r.deadline,
                outcome: JourneyOutcome::Failed,
            });
        }
        self.in_flight -= batch.requests.len() as u64;
    }

    /// Drains the current SLO window into the telemetry plane: counter
    /// deltas and the windowed latency histogram into `ts`, queue-depth
    /// and in-flight gauges, exemplar journeys into the flight ring,
    /// then the trigger checks (window p99 over the SLO deadline fires
    /// `slo_breach`; queue sheds fire `queue_saturation`) and the window
    /// roll itself. Call once per cadence tick and once at drain — this
    /// is the ServePlane half of the drive-loop telemetry contract; the
    /// driver adds its own CheckPlane/resilience triggers.
    pub fn telemetry_tick(&mut self, now: Time, ts: &mut TimeSeries, fr: &mut FlightRecorder) {
        let w = self.slo.take_window();
        ts.incr("serve.submitted", w.submitted);
        ts.incr("serve.admitted", w.admitted);
        ts.incr("serve.completed", w.completed);
        ts.incr("serve.failed", w.failed);
        ts.incr("serve.shed_queue", w.shed_queue);
        ts.incr("serve.shed_throttle", w.shed_throttle);
        ts.incr("serve.deadline_miss", w.deadline_miss);
        ts.incr("serve.goodput", w.goodput);
        ts.merge_hist("serve.latency_ns", &w.latency_ns);
        ts.set_gauge("serve.queue_depth", self.queued() as u64);
        ts.set_gauge("serve.in_flight", self.in_flight);
        let window = ts.window_index(now);
        for j in &w.exemplars {
            fr.note(j.completed, "exemplar", || j.describe());
        }
        let deadline_ns = self.spec.deadline.as_ns();
        if w.latency_ns.count() > 0 {
            let p99 = w.latency_ns.percentile(99.0);
            if p99 > deadline_ns {
                fr.trigger(now, window, TriggerKind::SloBreach, || {
                    format!(
                        "window p99 {p99}ns exceeds deadline {deadline_ns}ns \
                         ({} completions, {} misses)",
                        w.completed, w.deadline_miss
                    )
                });
            }
        }
        if w.shed_queue > 0 {
            fr.trigger(now, window, TriggerKind::QueueSaturation, || {
                format!(
                    "{} requests shed on saturated queues this window",
                    w.shed_queue
                )
            });
        }
        ts.advance(now);
    }

    /// Whether the plane is fully drained: no future arrivals, empty
    /// queues, nothing in flight.
    pub fn drained(&self) -> bool {
        self.next_arrival().is_none() && self.queued() == 0 && self.in_flight == 0
    }

    /// Requests currently in flight (dispatched, not yet completed).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// ServePlane invariants: request conservation (`submitted =
    /// admitted + shed`, `admitted = queued + in-flight + completed +
    /// failed`) and the queue bound. Call at every cadence tick and at
    /// drain.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        let submitted: u64 = self.tenants.iter().map(|t| t.submitted).sum();
        let admitted: u64 = self.tenants.iter().map(|t| t.admitted).sum();
        let shed: u64 = self.tenants.iter().map(|t| t.shed()).sum();
        let completed: u64 = self.tenants.iter().map(|t| t.completed).sum();
        let failed: u64 = self.tenants.iter().map(|t| t.failed).sum();
        let queued = self.queued() as u64;
        cp.check(
            invariant::SERVE_REQUEST_CONSERVED,
            submitted == admitted + shed,
            || format!("submitted {submitted} != admitted {admitted} + shed {shed}"),
        );
        cp.check(
            invariant::SERVE_REQUEST_CONSERVED,
            admitted == queued + self.in_flight + completed + failed,
            || {
                format!(
                    "admitted {admitted} != queued {queued} + in-flight {} + completed \
                     {completed} + failed {failed}",
                    self.in_flight
                )
            },
        );
        for t in &self.tenants {
            cp.check(
                invariant::SERVE_QUEUE_BOUNDED,
                t.queue.len() <= self.spec.queue,
                || {
                    format!(
                        "tenant {} queue depth {} exceeds bound {}",
                        t.id,
                        t.queue.len(),
                        self.spec.queue
                    )
                },
            );
        }
    }

    /// Exports the plane's instruments under `serve.*`. Deterministic:
    /// pure functions of the spec and the driver's dispatch schedule.
    pub fn export_metrics(&self, m: &mut MetricsRegistry) {
        let sum = |f: fn(&TenantSlot) -> u64| self.tenants.iter().map(f).sum::<u64>();
        m.add("serve.submitted", sum(|t| t.submitted));
        m.add("serve.admitted", sum(|t| t.admitted));
        m.add("serve.completed", sum(|t| t.completed));
        m.add("serve.shed_queue", sum(|t| t.shed_queue));
        m.add("serve.shed_throttle", sum(|t| t.shed_throttle));
        m.add("serve.failed", sum(|t| t.failed));
        m.add("serve.deadline_miss", sum(|t| t.deadline_miss));
        m.add("serve.goodput", sum(|t| t.goodput));
        m.add("serve.batches", self.batches);
        m.add("serve.batched_requests", self.batched_requests);
        m.merge_hist("serve.batch_size", &self.batch_size);
        let mut latency = Histogram::new();
        for t in &self.tenants {
            latency.merge(&t.latency_ns);
        }
        m.merge_hist("serve.latency_ns", &latency);
    }

    /// Serializes the plane's mutable state: dispatcher scalars, then
    /// every tenant's arrival/mix RNG streams, queue contents, token
    /// bucket, and ledgers, in hosted order. The spec and tenant ids are
    /// structural — the restore target must be built with
    /// [`ServePlane::for_tenants`] over the same spec and ids (the
    /// system snapshot embeds the spec string for exactly that).
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        w.put_u32(self.mix_len);
        w.put_usize(self.cursor);
        w.put_u64(self.next_id);
        w.put_u64(self.in_flight);
        w.put_bool(self.pressure);
        w.put_u64(self.batches);
        w.put_u64(self.batched_requests);
        self.batch_size.snapshot(w);
        self.slo.snapshot(w);
        w.put_usize(self.tenants.len());
        for t in &self.tenants {
            w.put_u32(t.id);
            t.gen.rng.snapshot(w);
            w.put_opt_time(t.gen.next);
            t.mix_rng.snapshot(w);
            w.put_usize(t.queue.len());
            for r in &t.queue {
                w.put_u64(r.id);
                w.put_u32(r.kernel);
                w.put_time(r.arrival);
                w.put_time(r.deadline);
            }
            w.put_f64(t.bucket.level);
            w.put_time(t.bucket.last);
            w.put_u64(t.submitted);
            w.put_u64(t.admitted);
            w.put_u64(t.shed_queue);
            w.put_u64(t.shed_throttle);
            w.put_u64(t.completed);
            w.put_u64(t.failed);
            w.put_u64(t.deadline_miss);
            w.put_u64(t.goodput);
            t.latency_ns.snapshot(w);
        }
    }

    /// Overlays state captured by [`ServePlane::snapshot_state`] onto
    /// this plane, which must have been built over the same spec, mix
    /// length, and tenant ids.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on any shape mismatch (mix length,
    /// tenant count or ids), truncation, an out-of-range kernel index,
    /// or a queued request violating FIFO arrival order.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        let mix_len = r.get_u32()?;
        if mix_len != self.mix_len {
            return Err(malformed(format!(
                "snapshot serves a {mix_len}-kernel mix, this plane {}",
                self.mix_len
            )));
        }
        let cursor = r.get_usize()?;
        if cursor >= self.tenants.len() {
            return Err(malformed(format!(
                "dispatch cursor {cursor} out of range for {} tenants",
                self.tenants.len()
            )));
        }
        self.cursor = cursor;
        self.next_id = r.get_u64()?;
        self.in_flight = r.get_u64()?;
        self.pressure = r.get_bool()?;
        self.batches = r.get_u64()?;
        self.batched_requests = r.get_u64()?;
        self.batch_size = Histogram::restore(r)?;
        self.slo = SloTracker::restore(r)?;
        let n = r.get_usize()?;
        if n != self.tenants.len() {
            return Err(malformed(format!(
                "snapshot hosts {n} tenants, this plane {}",
                self.tenants.len()
            )));
        }
        for t in &mut self.tenants {
            let id = r.get_u32()?;
            if id != t.id {
                return Err(malformed(format!(
                    "snapshot tenant {id} does not match hosted tenant {}",
                    t.id
                )));
            }
            t.gen.rng = SimRng::restore(r)?;
            t.gen.next = r.get_opt_time()?;
            t.mix_rng = SimRng::restore(r)?;
            let m = r.get_usize()?;
            if m > r.remaining() {
                return Err(malformed(format!(
                    "tenant {id} claims {m} queued requests but only {} bytes remain",
                    r.remaining()
                )));
            }
            t.queue.clear();
            let mut prev: Option<(Time, u64)> = None;
            for _ in 0..m {
                let rid = r.get_u64()?;
                if rid >= self.next_id {
                    return Err(malformed(format!(
                        "queued request {rid} at/above the id counter {}",
                        self.next_id
                    )));
                }
                let kernel = r.get_u32()?;
                if kernel >= self.mix_len {
                    return Err(malformed(format!(
                        "queued request {rid} draws kernel {kernel} of a {}-kernel mix",
                        self.mix_len
                    )));
                }
                let arrival = r.get_time()?;
                if prev.is_some_and(|p| p > (arrival, rid)) {
                    return Err(malformed(format!(
                        "tenant {id} queue breaks FIFO order at request {rid}"
                    )));
                }
                prev = Some((arrival, rid));
                t.queue.push_back(Request {
                    id: rid,
                    tenant: id,
                    kernel,
                    arrival,
                    dispatched: Time::ZERO,
                    deadline: r.get_time()?,
                });
            }
            t.bucket.level = r.get_f64()?;
            t.bucket.last = r.get_time()?;
            t.submitted = r.get_u64()?;
            t.admitted = r.get_u64()?;
            t.shed_queue = r.get_u64()?;
            t.shed_throttle = r.get_u64()?;
            t.completed = r.get_u64()?;
            t.failed = r.get_u64()?;
            t.deadline_miss = r.get_u64()?;
            t.goodput = r.get_u64()?;
            t.latency_ns = Histogram::restore(r)?;
        }
        Ok(())
    }

    /// Snapshots the SLO ledger as a [`ServingReport`].
    pub fn report(&self) -> ServingReport {
        let mut latency = Histogram::new();
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for t in &self.tenants {
            latency.merge(&t.latency_ns);
            tenants.push(TenantReport {
                tenant: t.id,
                submitted: t.submitted,
                admitted: t.admitted,
                completed: t.completed,
                shed_queue: t.shed_queue,
                shed_throttle: t.shed_throttle,
                failed: t.failed,
                deadline_miss: t.deadline_miss,
                goodput: t.goodput,
                p50_ns: t.latency_ns.percentile(50.0),
                p99_ns: t.latency_ns.percentile(99.0),
                mean_ns: t.latency_ns.mean(),
            });
        }
        ServingReport {
            horizon: self.spec.horizon,
            batches: self.batches,
            batched_requests: self.batched_requests,
            latency,
            tenants,
        }
    }
}

/// One tenant's SLO ledger inside a [`ServingReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Global tenant id.
    pub tenant: u32,
    /// Requests the tenant's open-loop source generated.
    pub submitted: u64,
    /// Requests admitted past the bucket and queue bound.
    pub admitted: u64,
    /// Requests completed by the backend.
    pub completed: u64,
    /// Requests shed on a full queue (backpressure).
    pub shed_queue: u64,
    /// Requests shed on an empty token bucket (fair share).
    pub shed_throttle: u64,
    /// Requests whose backend call failed.
    pub failed: u64,
    /// Completions past their deadline.
    pub deadline_miss: u64,
    /// Completions within their deadline.
    pub goodput: u64,
    /// Median completion latency, nanoseconds (log-binned histogram).
    pub p50_ns: u64,
    /// Tail (99th percentile) completion latency, nanoseconds.
    pub p99_ns: u64,
    /// Mean completion latency, nanoseconds.
    pub mean_ns: f64,
}

/// The deterministic serving section of a system report: aggregate and
/// per-tenant SLO accounting for one run. Mergeable across serving
/// cells (disjoint tenant sets).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// The open-loop horizon the run offered load for.
    pub horizon: Duration,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests across all dispatched batches.
    pub batched_requests: u64,
    /// Aggregate completion-latency histogram (all tenants).
    pub latency: Histogram,
    /// Per-tenant ledgers, sorted by tenant id.
    pub tenants: Vec<TenantReport>,
}

impl ServingReport {
    fn sum(&self, f: fn(&TenantReport) -> u64) -> u64 {
        self.tenants.iter().map(f).sum()
    }

    /// Requests generated across all tenants.
    pub fn submitted(&self) -> u64 {
        self.sum(|t| t.submitted)
    }

    /// Requests admitted across all tenants.
    pub fn admitted(&self) -> u64 {
        self.sum(|t| t.admitted)
    }

    /// Requests completed across all tenants.
    pub fn completed(&self) -> u64 {
        self.sum(|t| t.completed)
    }

    /// Requests shed across all tenants (queue + throttle).
    pub fn shed(&self) -> u64 {
        self.sum(|t| t.shed_queue + t.shed_throttle)
    }

    /// Requests failed across all tenants.
    pub fn failed(&self) -> u64 {
        self.sum(|t| t.failed)
    }

    /// Completions within deadline across all tenants.
    pub fn goodput(&self) -> u64 {
        self.sum(|t| t.goodput)
    }

    /// Deadline misses across all tenants.
    pub fn deadline_miss(&self) -> u64 {
        self.sum(|t| t.deadline_miss)
    }

    /// Goodput rate over the horizon, requests/second.
    pub fn goodput_per_sec(&self) -> f64 {
        self.goodput() as f64 / self.horizon.as_ns_f64() * 1e9
    }

    /// Shed fraction of submitted load (0 when nothing was submitted).
    pub fn shed_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            self.shed() as f64 / submitted as f64
        }
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Request conservation at drain: every submitted request is
    /// accounted exactly once (nothing lost).
    pub fn conserved(&self) -> bool {
        self.submitted() == self.admitted() + self.shed()
            && self.admitted() == self.completed() + self.failed()
    }

    /// Folds another cell's report (disjoint tenant set) into this one.
    pub fn merge(&mut self, other: &ServingReport) {
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.latency.merge(&other.latency);
        self.tenants.extend(other.tenants.iter().cloned());
        self.tenants.sort_by_key(|t| t.tenant);
    }

    /// Renders the report as a JSON object. Deterministic: fixed key
    /// order, tenants sorted by id; the golden schema test under
    /// `tests/golden/` pins this shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"horizon_ns\":");
        json::fmt_f64(&mut out, self.horizon.as_ns_f64());
        out.push_str(",\"submitted\":");
        out.push_str(&self.submitted().to_string());
        out.push_str(",\"admitted\":");
        out.push_str(&self.admitted().to_string());
        out.push_str(",\"completed\":");
        out.push_str(&self.completed().to_string());
        out.push_str(",\"shed\":");
        out.push_str(&self.shed().to_string());
        out.push_str(",\"failed\":");
        out.push_str(&self.failed().to_string());
        out.push_str(",\"deadline_miss\":");
        out.push_str(&self.deadline_miss().to_string());
        out.push_str(",\"goodput\":");
        out.push_str(&self.goodput().to_string());
        out.push_str(",\"goodput_per_sec\":");
        json::fmt_f64(&mut out, self.goodput_per_sec());
        out.push_str(",\"shed_rate\":");
        json::fmt_f64(&mut out, self.shed_rate());
        out.push_str(",\"batches\":");
        out.push_str(&self.batches.to_string());
        out.push_str(",\"mean_batch\":");
        json::fmt_f64(&mut out, self.mean_batch());
        out.push_str(",\"p50_ns\":");
        out.push_str(&self.latency.percentile(50.0).to_string());
        out.push_str(",\"p99_ns\":");
        out.push_str(&self.latency.percentile(99.0).to_string());
        out.push_str(",\"conserved\":");
        out.push_str(if self.conserved() { "true" } else { "false" });
        out.push_str(",\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            out.push_str(&t.tenant.to_string());
            out.push_str(",\"submitted\":");
            out.push_str(&t.submitted.to_string());
            out.push_str(",\"admitted\":");
            out.push_str(&t.admitted.to_string());
            out.push_str(",\"completed\":");
            out.push_str(&t.completed.to_string());
            out.push_str(",\"shed_queue\":");
            out.push_str(&t.shed_queue.to_string());
            out.push_str(",\"shed_throttle\":");
            out.push_str(&t.shed_throttle.to_string());
            out.push_str(",\"failed\":");
            out.push_str(&t.failed.to_string());
            out.push_str(",\"deadline_miss\":");
            out.push_str(&t.deadline_miss.to_string());
            out.push_str(",\"goodput\":");
            out.push_str(&t.goodput.to_string());
            out.push_str(",\"p50_ns\":");
            out.push_str(&t.p50_ns.to_string());
            out.push_str(",\"p99_ns\":");
            out.push_str(&t.p99_ns.to_string());
            out.push_str(",\"mean_ns\":");
            json::fmt_f64(&mut out, t.mean_ns);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the per-tenant SLO table.
    pub fn to_table(&self) -> ecoscale_sim::report::Table {
        let mut t = ecoscale_sim::report::Table::new(
            "serving",
            &[
                "tenant",
                "submitted",
                "admitted",
                "completed",
                "shed",
                "miss",
                "goodput",
                "p50",
                "p99",
            ],
        );
        for r in &self.tenants {
            t.row_owned(vec![
                r.tenant.to_string(),
                r.submitted.to_string(),
                r.admitted.to_string(),
                r.completed.to_string(),
                (r.shed_queue + r.shed_throttle).to_string(),
                r.deadline_miss.to_string(),
                r.goodput.to_string(),
                Duration::from_ns(r.p50_ns).to_string(),
                Duration::from_ns(r.p99_ns).to_string(),
            ]);
        }
        t.row_owned(vec![
            "all".to_string(),
            self.submitted().to_string(),
            self.admitted().to_string(),
            self.completed().to_string(),
            self.shed().to_string(),
            self.deadline_miss().to_string(),
            self.goodput().to_string(),
            Duration::from_ns(self.latency.percentile(50.0)).to_string(),
            Duration::from_ns(self.latency.percentile(99.0)).to_string(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_to_drain(plane: &mut ServePlane, service: Duration) -> Time {
        // a one-lane synthetic backend: fixed service time per batch
        let mut now = Time::ZERO;
        let mut lane_free = Time::ZERO;
        let mut inflight: Vec<(Time, Batch)> = Vec::new();
        loop {
            inflight.retain(|(t, b)| {
                if *t <= now {
                    // completions retire in the retain order they were
                    // pushed, which is dispatch order — deterministic
                    plane_complete(plane, b, *t);
                    false
                } else {
                    true
                }
            });
            plane.pop_arrivals(now);
            while lane_free <= now && plane.dispatch_ready(now) {
                let batch = plane.take_batch(now).expect("ready implies queued");
                lane_free = now + plane.spec().overhead + service;
                inflight.push((lane_free, batch));
            }
            let mut next: Option<Time> = None;
            let mut fold = |t: Time| next = Some(next.map_or(t, |n: Time| n.min(t)));
            if let Some(a) = plane.next_arrival() {
                fold(a);
            }
            for (t, _) in &inflight {
                fold(*t);
            }
            if plane.queued() > 0 {
                let ripe = plane.ripe_at(now).expect("queued");
                fold(ripe.max(lane_free).max(Time::from_ps(now.as_ps() + 1)));
            }
            match next {
                Some(t) if t > now => now = t,
                Some(t) => now = Time::from_ps(t.as_ps().max(now.as_ps() + 1)),
                None => break,
            }
        }
        assert!(plane.drained());
        now
    }

    fn plane_complete(plane: &mut ServePlane, b: &Batch, at: Time) {
        plane.complete_batch(b, at);
    }

    #[test]
    fn spec_round_trips_and_base_is_default() {
        let spec = ServeSpec::base();
        assert_eq!(spec, ServeSpec::default());
        let again = ServeSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, again);

        let text = "seed=9,tenants=6,horizon=1ms,rate=50000,burst=4,burst_every=200us,\
                    burst_for=50us,queue=32,tokens=16,refill=40000,batch=4,batch_wait=10us,\
                    deadline=100us,overhead=2us";
        let spec = ServeSpec::parse(text).unwrap();
        assert_eq!(spec.tenants, 6);
        assert_eq!(spec.burst, 4.0);
        assert_eq!(spec.queue, 32);
        let again = ServeSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(ServeSpec::parse("bogus=1").is_err());
        assert!(ServeSpec::parse("rate").is_err());
        assert!(ServeSpec::parse("rate=0").is_err());
        assert!(ServeSpec::parse("tenants=0").is_err());
        assert!(ServeSpec::parse("queue=0").is_err());
        assert!(ServeSpec::parse("batch=0").is_err());
        assert!(ServeSpec::parse("burst=0.5").is_err());
        assert!(ServeSpec::parse("horizon=fast").is_err());
        let err = ServeSpec::parse("deadline=nope").unwrap_err();
        assert!(err.to_string().contains("deadline=nope"));
    }

    #[test]
    fn batching_off_only_touches_the_batch_policy() {
        let spec = ServeSpec::base();
        let off = spec.batching_off();
        assert_eq!(off.batch, 1);
        assert_eq!(off.batch_wait, Duration::ZERO);
        assert_eq!(off.rate, spec.rate);
        assert_eq!(off.seed, spec.seed);
        assert!((off.offered_per_sec() - spec.offered_per_sec()).abs() < 1e-9);
    }

    #[test]
    fn arrivals_are_deterministic_and_respect_horizon() {
        let spec = ServeSpec::parse("seed=3,rate=100000,horizon=1ms").unwrap();
        let mut a = ArrivalGen::new(&spec, 0);
        let mut b = ArrivalGen::new(&spec, 0);
        let horizon = Time::ZERO + spec.horizon;
        let mut n = 0;
        let mut last = Time::ZERO;
        while let Some(t) = a.pop_due(Time::MAX) {
            assert_eq!(Some(t), b.pop_due(Time::MAX));
            assert!(t >= last && t < horizon);
            last = t;
            n += 1;
        }
        // 100k/s over 1ms => ~100 arrivals
        assert!(n > 50 && n < 200, "{n}");
        // a different tenant draws a different stream
        let mut c = ArrivalGen::new(&spec, 1);
        assert_ne!(
            c.pop_due(Time::MAX),
            ArrivalGen::new(&spec, 0).pop_due(Time::MAX)
        );
    }

    #[test]
    fn bursts_concentrate_arrivals_inside_windows() {
        let spec = ServeSpec::parse(
            "seed=5,rate=100000,horizon=4ms,burst=8,burst_every=1ms,burst_for=100us",
        )
        .unwrap();
        let mut g = ArrivalGen::new(&spec, 0);
        let (mut inside, mut outside) = (0u64, 0u64);
        while let Some(t) = g.pop_due(Time::MAX) {
            if t.as_ps() % spec.burst_every.as_ps() < spec.burst_for.as_ps() {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        // burst windows are 10% of the time but 8x the rate: roughly
        // 8:9 of the arrivals land inside
        assert!(inside > outside / 3, "inside={inside} outside={outside}");
        assert!(inside + outside > 100);
    }

    #[test]
    fn token_bucket_throttles_only_the_heavy_tenant() {
        // tenant budget (refill 30k/s) is well under the offered rate
        // (200k/s): most of the heavy load throttles
        let spec =
            ServeSpec::parse("seed=7,tenants=2,rate=200000,horizon=2ms,tokens=8,refill=30000")
                .unwrap();
        let mut plane = ServePlane::new(&spec, 1);
        plane.pop_arrivals(Time::MAX);
        let r = plane.report();
        let heavy_shed: u64 = r.tenants.iter().map(|t| t.shed_throttle).sum();
        assert!(heavy_shed > 0, "refill below offered rate must throttle");
        // an unthrottled spec never sheds on the bucket
        let free = ServeSpec::parse("seed=7,tenants=2,rate=200000,horizon=2ms").unwrap();
        let mut plane = ServePlane::new(&free, 1);
        plane.pop_arrivals(Time::MAX);
        assert_eq!(
            plane
                .report()
                .tenants
                .iter()
                .map(|t| t.shed_throttle)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn full_queue_sheds_and_stays_bounded() {
        let spec = ServeSpec::parse("seed=11,tenants=1,rate=500000,horizon=2ms,queue=4").unwrap();
        let mut plane = ServePlane::new(&spec, 2);
        let mut cp = CheckPlane::enabled(1);
        plane.pop_arrivals(Time::MAX);
        plane.check_invariants(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert!(plane.queued() <= 4);
        let r = plane.report();
        assert!(r.tenants[0].shed_queue > 0, "overload must shed");
        assert_eq!(r.submitted(), r.admitted() + r.shed());
    }

    #[test]
    fn pressure_halves_the_queue_bound() {
        let spec = ServeSpec::parse("seed=11,tenants=1,rate=500000,horizon=2ms,queue=8").unwrap();
        let mut plane = ServePlane::new(&spec, 1);
        plane.set_pressure(true);
        assert!(plane.pressure());
        plane.pop_arrivals(Time::MAX);
        assert!(plane.queued() <= 4, "pressure halves the bound");
        let mut cp = CheckPlane::enabled(1);
        plane.check_invariants(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
    }

    #[test]
    fn batches_coalesce_one_kernel_across_tenants() {
        let spec = ServeSpec::parse("seed=13,tenants=4,rate=400000,horizon=1ms,batch=6").unwrap();
        let mut plane = ServePlane::new(&spec, 3);
        plane.pop_arrivals(Time::MAX);
        let mut seen_multi_tenant = false;
        while let Some(b) = plane.take_batch(Time::MAX) {
            assert!(!b.is_empty() && b.len() <= 6);
            assert!(b.requests.iter().all(|r| r.kernel == b.kernel));
            let first = b.requests[0].tenant;
            if b.requests.iter().any(|r| r.tenant != first) {
                seen_multi_tenant = true;
            }
            plane.complete_batch(&b, Time::MAX);
        }
        assert!(seen_multi_tenant, "coalescing must cross tenants");
        assert!(plane.drained());
        let r = plane.report();
        assert!(r.mean_batch() > 1.0, "batching must actually batch");
        assert!(r.conserved());
    }

    #[test]
    fn synthetic_drive_conserves_and_reports() {
        let spec =
            ServeSpec::parse("seed=17,tenants=3,rate=150000,horizon=1ms,batch=4,deadline=50us")
                .unwrap();
        let mut plane = ServePlane::new(&spec, 2);
        drive_to_drain(&mut plane, Duration::from_us(2));
        let mut cp = CheckPlane::enabled(1);
        plane.check_invariants(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        let r = plane.report();
        assert!(r.conserved(), "drained plane conserves requests");
        assert!(r.completed() > 0);
        assert_eq!(r.completed(), r.goodput() + r.deadline_miss());
        assert!(r.latency.count() == r.completed());
        // JSON parses and carries the aggregates
        let parsed = json::parse(&r.to_json()).unwrap();
        assert_eq!(
            parsed.get("completed").and_then(|v| v.as_f64()),
            Some(r.completed() as f64)
        );
        assert_eq!(parsed.get("conserved"), Some(&json::Value::Bool(true)));
        assert_eq!(
            parsed
                .get("tenants")
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(3)
        );
        assert!(r.to_table().to_string().contains("tenant"));
    }

    #[test]
    fn failed_batches_stay_accounted() {
        let spec = ServeSpec::parse("seed=19,tenants=1,rate=100000,horizon=1ms").unwrap();
        let mut plane = ServePlane::new(&spec, 1);
        plane.pop_arrivals(Time::MAX);
        let b = plane.take_batch(Time::MAX).unwrap();
        plane.fail_batch(&b, Time::MAX);
        while let Some(b) = plane.take_batch(Time::MAX) {
            plane.complete_batch(&b, Time::MAX);
        }
        let r = plane.report();
        assert!(r.failed() > 0);
        assert!(r.conserved(), "failed is accounted, not lost");
    }

    #[test]
    fn report_merge_keeps_disjoint_tenants_sorted() {
        let spec = ServeSpec::parse("seed=23,tenants=4,rate=100000,horizon=1ms").unwrap();
        let mut even = ServePlane::for_tenants(&spec, 1, &[0, 2]);
        let mut odd = ServePlane::for_tenants(&spec, 1, &[1, 3]);
        even.pop_arrivals(Time::MAX);
        odd.pop_arrivals(Time::MAX);
        let mut merged = even.report();
        merged.merge(&odd.report());
        let ids: Vec<u32> = merged.tenants.iter().map(|t| t.tenant).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(
            merged.submitted(),
            even.report().submitted() + odd.report().submitted()
        );
        // a tenant's stream is a function of its global id, not its cell
        let whole = ServePlane::new(&spec, 1);
        let mut whole = whole;
        whole.pop_arrivals(Time::MAX);
        assert_eq!(whole.report().submitted(), merged.submitted());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let spec = ServeSpec::parse(
            "seed=31,tenants=3,rate=200000,horizon=1ms,batch=4,tokens=32,refill=150000",
        )
        .unwrap();
        // run the plane mid-way: arrivals to 400us, one batch in flight
        let mid = Time::from_us(400);
        let build = || {
            let mut p = ServePlane::new(&spec, 2);
            p.pop_arrivals(mid);
            p.set_pressure(true);
            let b = p.take_batch(mid).expect("queued");
            p.complete_batch(&b, mid + Duration::from_us(20));
            let b = p.take_batch(mid).expect("queued");
            (p, b)
        };
        let (orig, pending) = build();

        let mut w = ecoscale_sim::SnapWriter::new();
        orig.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = ServePlane::new(&spec, 2);
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(
            bytes,
            w2.into_bytes(),
            "restored plane re-serializes differently"
        );
        assert_eq!(fresh.in_flight(), orig.in_flight());
        assert!(fresh.pressure());

        // drive both continuations identically (the in-flight batch is
        // the driver's to re-report; completions cross the snapshot)
        let (mut cont, pending2) = (orig, pending);
        cont.complete_batch(&pending2, mid + Duration::from_us(40));
        fresh.complete_batch(&pending2, mid + Duration::from_us(40));
        for p in [&mut cont, &mut fresh] {
            p.pop_arrivals(Time::MAX);
            while let Some(b) = p.take_batch(Time::MAX) {
                p.complete_batch(&b, Time::MAX);
            }
        }
        assert!(cont.drained() && fresh.drained());
        assert_eq!(cont.report(), fresh.report());
        let mut cp = CheckPlane::enabled(1);
        fresh.check_invariants(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
    }

    #[test]
    fn restore_rejects_shape_mismatch_and_truncation() {
        let spec = ServeSpec::parse("seed=31,tenants=3,rate=200000,horizon=1ms").unwrap();
        let mut orig = ServePlane::new(&spec, 2);
        orig.pop_arrivals(Time::from_us(500));
        let mut w = ecoscale_sim::SnapWriter::new();
        orig.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        // wrong mix length
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        assert!(ServePlane::new(&spec, 3).restore_state(&mut r).is_err());
        // wrong tenant set
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        assert!(ServePlane::for_tenants(&spec, 2, &[0, 1, 5])
            .restore_state(&mut r)
            .is_err());

        for cut in 0..bytes.len() {
            let mut p = ServePlane::new(&spec, 2);
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                p.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }

    #[test]
    fn metrics_export_is_complete() {
        let spec = ServeSpec::parse("seed=29,tenants=2,rate=100000,horizon=1ms").unwrap();
        let mut plane = ServePlane::new(&spec, 1);
        drive_to_drain(&mut plane, Duration::from_us(1));
        let mut m = MetricsRegistry::new();
        plane.export_metrics(&mut m);
        let r = plane.report();
        assert_eq!(m.counter("serve.submitted"), Some(r.submitted()));
        assert_eq!(m.counter("serve.completed"), Some(r.completed()));
        assert_eq!(m.counter("serve.batches"), Some(r.batches));
        assert!(m.get("serve.latency_ns").is_some());
    }
}
