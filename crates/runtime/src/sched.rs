//! Per-worker scheduling: local work queues, lazy work distribution, and
//! the baselines it is measured against.
//!
//! §4.2: "we will implement local work queues per worker and infer
//! (approximately) the status of remote workers via the status of the
//! local queue, using techniques inspired by Lazy Scheduling \[9\]" — i.e.
//! tasks enqueue locally with no global coordination, and idle workers
//! pull work with cheap probes. [`ClusterSim`] simulates a Compute Node's
//! workers executing a task trace under one of three [`SchedPolicy`]s
//! (experiment E8):
//!
//! * [`SchedPolicy::LazyLocal`] — the ECOSCALE design: local queues +
//!   randomized stealing by idle workers,
//! * [`SchedPolicy::Centralized`] — one global queue behind a serializing
//!   dispatcher (what it replaces),
//! * [`SchedPolicy::RandomPush`] — blind load spreading with no stealing.
//!
//! With [`ClusterSim::with_faults`] the simulation additionally draws
//! worker crashes and stalls from a seeded
//! [`CampaignSpec`] and recovers
//! through the [`resilience`](crate::resilience) policy: queued work on a
//! dead worker is re-homed with bounded retry, persistent offenders are
//! quarantined, and the report carries completed/lost counts plus an
//! availability figure.

use std::collections::{HashSet, VecDeque};

use ecoscale_noc::NodeId;
use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::fault::{salt, CampaignSpec, FaultClock};
use ecoscale_sim::{
    Counter, Duration, EventQueue, Histogram, MetricsRegistry, OnlineStats, SimRng, Time, Tracer,
    TrackId,
};

use crate::device::CpuModel;
use crate::resilience::{Backoff, Domain, ResilienceConfig, ResilienceManager, RetryPolicy};
use crate::task::Task;

/// A task plus its arrival time at the runtime.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// The task.
    pub task: Task,
    /// When it becomes ready.
    pub arrival: Time,
}

/// The scheduling policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Local queues; idle workers steal after probing up to `probes`
    /// random victims.
    LazyLocal {
        /// Max victims probed per steal attempt.
        probes: u32,
    },
    /// One global queue; every dispatch serializes through a central
    /// dispatcher.
    Centralized,
    /// Push each arrival to a uniformly random worker; no stealing.
    RandomPush,
}

/// What one simulated run produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedReport {
    /// Completion time of the last task.
    pub makespan: Time,
    /// Total scheduler-induced overhead (probes, dispatch serialization).
    pub sched_overhead: Duration,
    /// Remote probes / dispatch messages sent.
    pub messages: u64,
    /// Max over workers of busy time divided by makespan.
    pub max_utilization: f64,
    /// Mean worker utilization.
    pub mean_utilization: f64,
    /// Coefficient of variation of per-worker busy time (imbalance).
    pub imbalance: f64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Tasks abandoned to faults (retry budget exhausted, or no
    /// recovery armed when their worker died). Zero without faults.
    pub lost: u64,
    /// Fraction of worker-time the machine was in service: `1.0` minus
    /// crash/stall/quarantine downtime over `workers × makespan`.
    /// Exactly `1.0` when no fault campaign is installed.
    pub availability: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrive(usize),
    /// Worker finished its current task.
    Finish(usize),
    /// Lazy only: an idle worker wakes to try stealing again.
    Retry(usize),
    /// Centralized only: the dispatcher finished handing out a task.
    Dispatched {
        worker: usize,
        task: usize,
    },
}

/// Simulates one Compute Node's workers executing a task trace.
///
/// # Example
///
/// ```
/// use ecoscale_noc::NodeId;
/// use ecoscale_runtime::{ClusterSim, SchedPolicy, Task, TaskId, TaskSpec};
/// use ecoscale_sim::Time;
///
/// let tasks: Vec<TaskSpec> = (0..64)
///     .map(|i| TaskSpec {
///         task: Task::new(TaskId(i), "work", vec![], 200_000, 10_000, NodeId(0)),
///         arrival: Time::ZERO,
///     })
///     .collect();
/// let report = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 42).run(&tasks);
/// // all tasks land on worker 0's queue but stealing spreads them:
/// // several workers end up busy, so the run beats serial execution
/// assert!(report.mean_utilization > 2.0 / 8.0);
/// ```
#[derive(Debug)]
pub struct ClusterSim {
    workers: usize,
    policy: SchedPolicy,
    cpu: CpuModel,
    probe_latency: Duration,
    dispatch_latency: Duration,
    rng: SimRng,
    ins: SchedInstruments,
    tracer: Tracer,
    trace_label: String,
    faults: Option<WorkerFaults>,
    check: CheckPlane,
}

/// Worker fault injection installed by [`ClusterSim::with_faults`]:
/// crash and stall arrival clocks, the victim-pick stream, and the
/// resilience manager that decides recovery.
#[derive(Debug)]
struct WorkerFaults {
    crash_clock: FaultClock,
    stall_clock: FaultClock,
    pick: SimRng,
    stall_for: Duration,
    mgr: ResilienceManager,
}

/// Scheduler instruments accumulated by [`ClusterSim::run`] and read
/// back through [`ClusterSim::export_metrics`].
#[derive(Debug, Clone, Default)]
struct SchedInstruments {
    tasks: Counter,
    steals: Counter,
    probes: Counter,
    migrations: Counter,
    wait_ns: OnlineStats,
    exec_ns: OnlineStats,
    queue_depth: Histogram,
}

impl SchedInstruments {
    /// Records one task execution: wait latency (arrival → start),
    /// exec latency, migration (executed away from its data home), a
    /// span on the executing worker's track, and — when the task waited
    /// at all — a `wait` span on the shared wait track so ProfPlane can
    /// blame scheduler queueing on the critical path.
    #[allow(clippy::too_many_arguments)]
    fn on_exec(
        &mut self,
        spec: &TaskSpec,
        w: usize,
        workers: usize,
        start: Time,
        d: Duration,
        tracer: &Tracer,
        tracks: &[TrackId],
        wait_track: Option<TrackId>,
    ) {
        self.tasks.incr();
        let waited = start.saturating_since(spec.arrival);
        self.wait_ns.record(waited.as_ns_f64());
        self.exec_ns.record(d.as_ns_f64());
        if spec.task.data_home().0 % workers != w {
            self.migrations.incr();
        }
        if let Some(&track) = tracks.get(w) {
            tracer.complete(track, spec.task.function(), start, d);
        }
        if let Some(track) = wait_track {
            if waited > Duration::ZERO {
                tracer.complete(track, "wait", spec.arrival, waited);
            }
        }
    }
}

impl ClusterSim {
    /// Creates a simulator for `workers` workers under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, policy: SchedPolicy, seed: u64) -> ClusterSim {
        assert!(workers > 0, "need at least one worker");
        ClusterSim {
            workers,
            policy,
            cpu: CpuModel::a53_default(),
            probe_latency: Duration::from_ns(300),
            dispatch_latency: Duration::from_ns(800),
            rng: SimRng::seed_from(seed),
            ins: SchedInstruments::default(),
            tracer: Tracer::disabled(),
            trace_label: "sched".to_owned(),
            faults: None,
            check: CheckPlane::from_env(),
        }
    }

    /// Overrides the CPU model.
    pub fn with_cpu(mut self, cpu: CpuModel) -> ClusterSim {
        self.cpu = cpu;
        self
    }

    /// Installs worker fault injection from `spec` (crash and stall
    /// clocks seeded off the campaign) with `recovery` as the
    /// resilience policy. A spec with both worker fault classes
    /// disabled is a no-op, so fault-free campaigns stay byte-identical
    /// to runs without the FaultPlane at all.
    ///
    /// The campaign is one-shot: fault clocks advance across
    /// [`ClusterSim::run`]; install a fresh campaign per run to repeat
    /// one deterministically.
    pub fn with_faults(mut self, spec: &CampaignSpec, recovery: ResilienceConfig) -> ClusterSim {
        if spec.worker_crash_mtbf.is_zero() && spec.worker_stall_mtbf.is_zero() {
            return self;
        }
        self.faults = Some(WorkerFaults {
            crash_clock: FaultClock::new(spec.worker_crash_mtbf, spec.rng(salt::WORKER_CRASH)),
            stall_clock: FaultClock::new(spec.worker_stall_mtbf, spec.rng(salt::WORKER_STALL)),
            pick: spec.rng(salt::WORKER_PICK),
            stall_for: spec.worker_stall_for,
            mgr: ResilienceManager::new(recovery),
        });
        self
    }

    /// The resilience manager, when a fault campaign is installed.
    pub fn resilience(&self) -> Option<&ResilienceManager> {
        self.faults.as_ref().map(|f| &f.mgr)
    }

    /// Installs a tracer; task executions become spans on per-worker
    /// `{label}/w<N>` tracks and arrivals sample a `{label}/queued`
    /// counter track. `label` keeps lanes distinct when several
    /// simulations share one trace.
    pub fn with_tracer(mut self, tracer: Tracer, label: &str) -> ClusterSim {
        self.tracer = tracer;
        self.trace_label = label.to_owned();
        self
    }

    /// Installs a CheckPlane. [`ClusterSim::run`] then verifies, at the
    /// plane's cadence, that no task is queued or in flight twice across
    /// worker queues, the central queue and execution slots, and — at the
    /// end of each run — that every submitted task was either completed or
    /// declared lost. All checks are read-only: they draw nothing from the
    /// RNG, record no metrics and change no event ordering, so installing
    /// an (enabled or disabled) plane never perturbs golden schedules.
    pub fn with_checks(mut self, check: CheckPlane) -> ClusterSim {
        self.check = check;
        self
    }

    /// The installed CheckPlane (disabled by default); violations collected
    /// by [`ClusterSim::run`] are read back from here.
    pub fn checks(&self) -> &CheckPlane {
        &self.check
    }

    /// Folds the instruments of the most recent [`ClusterSim::run`]
    /// into `m` under `prefix`: task/steal/probe/migration counters,
    /// wait and exec latency stats, and the queue-depth histogram
    /// sampled at each arrival.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.add(&format!("{prefix}.tasks"), self.ins.tasks.get());
        m.add(&format!("{prefix}.steals"), self.ins.steals.get());
        m.add(&format!("{prefix}.probes"), self.ins.probes.get());
        m.add(&format!("{prefix}.migrations"), self.ins.migrations.get());
        m.merge_stats(&format!("{prefix}.wait_ns"), &self.ins.wait_ns);
        m.merge_stats(&format!("{prefix}.exec_ns"), &self.ins.exec_ns);
        m.merge_hist(&format!("{prefix}.queue_depth"), &self.ins.queue_depth);
        // Gated on installation so fault-free captures keep the exact
        // pre-FaultPlane key set (byte-identical JSON).
        if let Some(f) = &self.faults {
            f.mgr.export_metrics(m, &format!("{prefix}.resilience"));
        }
    }

    /// Runs the trace to completion and reports.
    pub fn run(&mut self, tasks: &[TaskSpec]) -> SchedReport {
        self.ins = SchedInstruments::default();
        let tracks: Vec<TrackId> = if self.tracer.is_enabled() {
            (0..self.workers)
                .map(|w| self.tracer.track(&format!("{}/w{}", self.trace_label, w)))
                .collect()
        } else {
            Vec::new()
        };
        let queue_track = if self.tracer.is_enabled() {
            Some(self.tracer.track(&format!("{}/queued", self.trace_label)))
        } else {
            None
        };
        let wait_track = if self.tracer.is_enabled() {
            Some(self.tracer.track(&format!("{}/wait", self.trace_label)))
        } else {
            None
        };
        let mut q: EventQueue<Ev> = EventQueue::new();
        // The lazy scheduler's historical probe backoff, expressed as a
        // resilience retry policy: 8x, 16x, then capped at 32x the probe
        // latency — bit-identical to the old `(4 << min(k, 3))` ladder.
        let steal_policy = RetryPolicy::new(
            self.probe_latency * 8,
            self.probe_latency * 32,
            RetryPolicy::UNBOUNDED,
        );
        let mut steal_backoff: Vec<Backoff> = vec![Backoff::new(); self.workers];
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.workers];
        let mut central: VecDeque<usize> = VecDeque::new();
        let mut busy: Vec<bool> = vec![false; self.workers];
        let mut busy_time: Vec<Duration> = vec![Duration::ZERO; self.workers];
        let mut dispatcher_free = Time::ZERO;
        let mut overhead = Duration::ZERO;
        let mut messages = 0u64;
        let mut completed = 0usize;
        // FaultPlane state. All of it is inert without a campaign:
        // `retired` stays false, `stalled_until` stays ZERO, and the
        // guards below reduce to the fault-free control flow.
        let mut retired: Vec<bool> = vec![false; self.workers];
        let mut down_since: Vec<Option<Time>> = vec![None; self.workers];
        let mut stalled_until: Vec<Time> = vec![Time::ZERO; self.workers];
        let mut stall_downtime: Vec<Duration> = vec![Duration::ZERO; self.workers];
        let mut doomed: Vec<u32> = vec![0; self.workers];
        let mut current: Vec<Option<usize>> = vec![None; self.workers];
        let mut task_backoff: Vec<Backoff> = if self.faults.is_some() {
            vec![Backoff::new(); tasks.len()]
        } else {
            Vec::new()
        };
        let mut lost = 0u64;

        for (i, t) in tasks.iter().enumerate() {
            q.schedule(t.arrival, Ev::Arrive(i));
        }
        // Lazy workers poll from the start: without an initial wake-up, a
        // worker that never receives an arrival would never steal.
        if let SchedPolicy::LazyLocal { .. } = self.policy {
            if let Some(first) = tasks.iter().map(|t| t.arrival).min() {
                for w in 0..self.workers {
                    q.schedule(first, Ev::Retry(w));
                }
            }
        }

        // Helper: execution time of a task on the CPU model.
        let exec_time = |task: &Task, cpu: &CpuModel| cpu.exec(task.flops(), task.mem_ops()).0;

        while let Some((now, ev)) = q.pop() {
            // CheckPlane cadence gate: read-only duplicate-task scan over
            // every queue and execution slot. One branch when disabled.
            if self.check.due() {
                Self::check_no_duplicates(&mut self.check, &queues, &central, &current);
            }
            // Drain fault arrivals up to the current instant, in time
            // order across both clocks.
            while let Some(f) = self.faults.as_mut() {
                let crash_at = f.crash_clock.peek().filter(|&t| t <= now);
                let stall_at = f.stall_clock.peek().filter(|&t| t <= now);
                let (at, is_crash) = match (crash_at, stall_at) {
                    (Some(c), Some(s)) if c <= s => (f.crash_clock.pop_due(now), true),
                    (Some(_), Some(_)) => (f.stall_clock.pop_due(now), false),
                    (Some(_), None) => (f.crash_clock.pop_due(now), true),
                    (None, Some(_)) => (f.stall_clock.pop_due(now), false),
                    (None, None) => break,
                };
                let at = at.expect("peeked arrival is due");
                let in_service: Vec<usize> = (0..self.workers).filter(|&w| !retired[w]).collect();
                let Some(&v) = in_service
                    .get(f.pick.gen_range_usize(0, in_service.len().max(1)))
                    .filter(|_| !in_service.is_empty())
                else {
                    continue; // machine already fully down
                };
                if is_crash {
                    // Hard fault: the worker dies with its queue, and
                    // any in-flight task fails with it.
                    f.mgr.record_failure(Domain::Worker(v), at);
                    retired[v] = true;
                    down_since[v] = Some(at);
                    let orphans: Vec<usize> = queues[v].drain(..).collect();
                    let inflight = current[v].take();
                    if inflight.is_some() {
                        doomed[v] += 1; // swallow the pending Finish
                    }
                    for t in orphans.into_iter().chain(inflight) {
                        Self::rehome(t, at, now, &mut f.mgr, &mut task_backoff, &mut q, &mut lost);
                    }
                } else {
                    // Transient stall: no new work until it clears.
                    stalled_until[v] = stalled_until[v].max(at + f.stall_for);
                    stall_downtime[v] += f.stall_for;
                    if f.mgr.record_failure(Domain::Worker(v), at) {
                        // Persistent offender: quarantine. Unlike a
                        // crash this is graceful — the queue is drained
                        // for re-homing and in-flight work completes.
                        retired[v] = true;
                        down_since[v] = Some(at);
                        let orphans: Vec<usize> = queues[v].drain(..).collect();
                        for t in orphans {
                            Self::rehome(
                                t,
                                at,
                                now,
                                &mut f.mgr,
                                &mut task_backoff,
                                &mut q,
                                &mut lost,
                            );
                        }
                    }
                }
            }
            match ev {
                Ev::Arrive(idx) => {
                    let home = tasks[idx].task.data_home().0 % self.workers;
                    match self.policy {
                        SchedPolicy::LazyLocal { .. } => {
                            // A dead home re-routes to the next worker
                            // still in service, or the task is lost.
                            let Some(home) = Self::next_in_service(home, &retired) else {
                                lost += 1;
                                if let Some(f) = self.faults.as_mut() {
                                    f.mgr.note_lost();
                                }
                                continue;
                            };
                            queues[home].push_back(idx);
                            self.ins.queue_depth.record(queues[home].len() as u64);
                            if let Some(t) = queue_track {
                                self.tracer
                                    .counter(t, "queued", now, queues[home].len() as f64);
                            }
                            if !busy[home] {
                                if now < stalled_until[home] {
                                    q.schedule(stalled_until[home], Ev::Retry(home));
                                } else {
                                    Self::start(
                                        home,
                                        &mut queues,
                                        &mut busy,
                                        &mut busy_time,
                                        &mut current,
                                        &mut q,
                                        now,
                                        tasks,
                                        &self.cpu,
                                        exec_time,
                                        &mut self.ins,
                                        &self.tracer,
                                        &tracks,
                                        wait_track,
                                    );
                                }
                            }
                        }
                        SchedPolicy::RandomPush => {
                            let w = self.rng.gen_range_usize(0, self.workers);
                            messages += 1;
                            let Some(w) = Self::next_in_service(w, &retired) else {
                                lost += 1;
                                if let Some(f) = self.faults.as_mut() {
                                    f.mgr.note_lost();
                                }
                                continue;
                            };
                            queues[w].push_back(idx);
                            self.ins.queue_depth.record(queues[w].len() as u64);
                            if let Some(t) = queue_track {
                                self.tracer
                                    .counter(t, "queued", now, queues[w].len() as f64);
                            }
                            if !busy[w] {
                                if now < stalled_until[w] {
                                    q.schedule(stalled_until[w], Ev::Retry(w));
                                } else {
                                    Self::start(
                                        w,
                                        &mut queues,
                                        &mut busy,
                                        &mut busy_time,
                                        &mut current,
                                        &mut q,
                                        now,
                                        tasks,
                                        &self.cpu,
                                        exec_time,
                                        &mut self.ins,
                                        &self.tracer,
                                        &tracks,
                                        wait_track,
                                    );
                                }
                            }
                        }
                        SchedPolicy::Centralized => {
                            central.push_back(idx);
                            self.ins.queue_depth.record(central.len() as u64);
                            if let Some(t) = queue_track {
                                self.tracer.counter(t, "queued", now, central.len() as f64);
                            }
                            // try to dispatch to an idle worker
                            if let Some(w) = (0..self.workers)
                                .find(|&w| !busy[w] && !retired[w] && now >= stalled_until[w])
                            {
                                if let Some(t) = central.pop_front() {
                                    busy[w] = true; // reserved while dispatching
                                    let start = dispatcher_free.max(now);
                                    let done = start + self.dispatch_latency;
                                    overhead += done - now;
                                    dispatcher_free = done;
                                    messages += 2; // request + grant
                                    q.schedule(done, Ev::Dispatched { worker: w, task: t });
                                }
                            }
                        }
                    }
                }
                Ev::Dispatched { worker, task } => {
                    if retired[worker] {
                        // The worker died between grant and delivery:
                        // the dispatch fails and the task is recovered.
                        let f = self.faults.as_mut().expect("retired implies faults");
                        Self::rehome(
                            task,
                            now,
                            now,
                            &mut f.mgr,
                            &mut task_backoff,
                            &mut q,
                            &mut lost,
                        );
                        continue;
                    }
                    let d = exec_time(&tasks[task].task, &self.cpu);
                    busy_time[worker] += d;
                    current[worker] = Some(task);
                    self.ins.on_exec(
                        &tasks[task],
                        worker,
                        self.workers,
                        now,
                        d,
                        &self.tracer,
                        &tracks,
                        wait_track,
                    );
                    q.schedule(now + d, Ev::Finish(worker));
                }
                Ev::Finish(w) | Ev::Retry(w) => {
                    if matches!(ev, Ev::Finish(_)) {
                        if doomed[w] > 0 {
                            // the worker crashed mid-execution; the task
                            // already went through recovery
                            doomed[w] -= 1;
                            continue;
                        }
                        completed += 1;
                        current[w] = None;
                    }
                    if retired[w] {
                        continue; // crashed or quarantined: no new work
                    }
                    if matches!(ev, Ev::Retry(_)) && busy[w] {
                        continue; // stale poll: the worker found work meanwhile
                    }
                    busy[w] = false;
                    if now < stalled_until[w] {
                        // stalled: wake again once the stall clears
                        q.schedule(stalled_until[w], Ev::Retry(w));
                        continue;
                    }
                    match self.policy {
                        SchedPolicy::Centralized => {
                            if let Some(t) = central.pop_front() {
                                busy[w] = true;
                                let start = dispatcher_free.max(now);
                                let done = start + self.dispatch_latency;
                                overhead += done - now;
                                dispatcher_free = done;
                                messages += 2;
                                q.schedule(done, Ev::Dispatched { worker: w, task: t });
                            }
                        }
                        SchedPolicy::RandomPush => {
                            if !queues[w].is_empty() {
                                Self::start(
                                    w,
                                    &mut queues,
                                    &mut busy,
                                    &mut busy_time,
                                    &mut current,
                                    &mut q,
                                    now,
                                    tasks,
                                    &self.cpu,
                                    exec_time,
                                    &mut self.ins,
                                    &self.tracer,
                                    &tracks,
                                    wait_track,
                                );
                            }
                        }
                        SchedPolicy::LazyLocal { probes } => {
                            if !queues[w].is_empty() {
                                Self::start(
                                    w,
                                    &mut queues,
                                    &mut busy,
                                    &mut busy_time,
                                    &mut current,
                                    &mut q,
                                    now,
                                    tasks,
                                    &self.cpu,
                                    exec_time,
                                    &mut self.ins,
                                    &self.tracer,
                                    &tracks,
                                    wait_track,
                                );
                            } else {
                                // steal: probe random victims and take
                                // half of the richest victim's queue (the
                                // classic steal-half heuristic)
                                let mut victim = None;
                                let mut probe_cost = Duration::ZERO;
                                for _ in 0..probes {
                                    let v = self.rng.gen_range_usize(0, self.workers);
                                    probe_cost += self.probe_latency;
                                    messages += 1;
                                    self.ins.probes.incr();
                                    if v != w && queues[v].len() > 1 {
                                        victim = Some(v);
                                        break;
                                    }
                                }
                                overhead += probe_cost;
                                if let Some(v) = victim {
                                    steal_backoff[w].reset();
                                    self.ins.steals.incr();
                                    let keep = queues[v].len() / 2;
                                    let mut taken = queues[v].split_off(keep);
                                    let first = taken.pop_front().expect("len > 1");
                                    queues[w].extend(taken);
                                    let d = exec_time(&tasks[first].task, &self.cpu);
                                    busy[w] = true;
                                    busy_time[w] += d;
                                    current[w] = Some(first);
                                    self.ins.on_exec(
                                        &tasks[first],
                                        w,
                                        self.workers,
                                        now + probe_cost,
                                        d,
                                        &self.tracer,
                                        &tracks,
                                        wait_track,
                                    );
                                    q.schedule(now + probe_cost + d, Ev::Finish(w));
                                }
                                // if nothing stolen the worker idles until
                                // a new arrival lands in its queue; to keep
                                // it live, retry with exponential backoff
                                // while others still hold work
                                else if queues.iter().any(|qq| qq.len() > 1)
                                    || (completed + Self::in_flight(&busy) < tasks.len()
                                        && queues.iter().any(|qq| !qq.is_empty()))
                                {
                                    // bounded backoff: stay responsive
                                    // (hot queues refill constantly) while
                                    // capping the probe storm
                                    let wait = steal_backoff[w]
                                        .next(&steal_policy)
                                        .expect("steal retry is unbounded");
                                    q.schedule(now + probe_cost + wait, Ev::Retry(w));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Work still queued when the event stream dries up — possible
        // only once every worker has died — is lost.
        if let Some(f) = self.faults.as_mut() {
            let leftover: u64 =
                queues.iter().map(|qq| qq.len() as u64).sum::<u64>() + central.len() as u64;
            if leftover > 0 {
                lost += leftover;
                for _ in 0..leftover {
                    f.mgr.note_lost();
                }
            }
        }

        if self.check.is_enabled() {
            Self::check_no_duplicates(&mut self.check, &queues, &central, &current);
            self.check.check(
                invariant::SCHED_TASK_CONSERVATION,
                completed as u64 + lost == tasks.len() as u64,
                || {
                    format!(
                        "completed {completed} + lost {lost} != submitted {}",
                        tasks.len()
                    )
                },
            );
        }

        let makespan = q.now();
        let span = makespan.saturating_since(Time::ZERO);
        let utils: Vec<f64> = busy_time
            .iter()
            .map(|b| if span.is_zero() { 0.0 } else { *b / span })
            .collect();
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        let max = utils.iter().cloned().fold(0.0, f64::max);
        let var = utils.iter().map(|u| (u - mean) * (u - mean)).sum::<f64>() / utils.len() as f64;
        let imbalance = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        let availability = if self.faults.is_some() && !span.is_zero() {
            let mut down = Duration::ZERO;
            for (stalled, since) in stall_downtime.iter().zip(&down_since) {
                let mut d = *stalled;
                if let Some(t0) = *since {
                    d += makespan.saturating_since(t0);
                }
                down += d.min(span);
            }
            (1.0 - down / (span * self.workers as u64)).max(0.0)
        } else {
            1.0
        };
        SchedReport {
            makespan,
            sched_overhead: overhead,
            messages,
            max_utilization: max,
            mean_utilization: mean,
            imbalance,
            completed: completed as u64,
            lost,
            availability,
        }
    }

    fn in_flight(busy: &[bool]) -> usize {
        busy.iter().filter(|b| **b).count()
    }

    /// Read-only scan asserting no task index appears twice across worker
    /// queues, the central queue and in-flight execution slots.
    fn check_no_duplicates(
        cp: &mut CheckPlane,
        queues: &[VecDeque<usize>],
        central: &VecDeque<usize>,
        current: &[Option<usize>],
    ) {
        let mut seen: HashSet<usize> = HashSet::new();
        let all = queues
            .iter()
            .flatten()
            .chain(central.iter())
            .chain(current.iter().flatten());
        for &t in all {
            cp.check(invariant::SCHED_NO_DUPLICATE_TASKS, seen.insert(t), || {
                format!("task {t} queued or running twice")
            });
        }
    }

    /// First worker at or after `start` (wrapping) still in service.
    fn next_in_service(start: usize, retired: &[bool]) -> Option<usize> {
        let n = retired.len();
        (0..n).map(|k| (start + k) % n).find(|&w| !retired[w])
    }

    /// Recovers a task orphaned by a worker fault at `at`: re-injects
    /// it as a fresh arrival after the bounded-retry delay (never
    /// before `now` — the fault may predate the event being handled),
    /// or counts it lost once the budget (or the whole retry
    /// mechanism) is absent.
    #[allow(clippy::too_many_arguments)]
    fn rehome(
        task: usize,
        at: Time,
        now: Time,
        mgr: &mut ResilienceManager,
        task_backoff: &mut [Backoff],
        q: &mut EventQueue<Ev>,
        lost: &mut u64,
    ) {
        let policy = mgr.config().retry;
        match policy.and_then(|p| task_backoff[task].next(&p)) {
            Some(delay) => {
                let fire = (at + delay).max(now);
                mgr.note_retry();
                mgr.note_recovery(fire.since(at));
                q.schedule(fire, Ev::Arrive(task));
            }
            None => {
                mgr.note_lost();
                *lost += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start(
        w: usize,
        queues: &mut [VecDeque<usize>],
        busy: &mut [bool],
        busy_time: &mut [Duration],
        current: &mut [Option<usize>],
        q: &mut EventQueue<Ev>,
        now: Time,
        tasks: &[TaskSpec],
        cpu: &CpuModel,
        exec_time: impl Fn(&Task, &CpuModel) -> Duration,
        ins: &mut SchedInstruments,
        tracer: &Tracer,
        tracks: &[TrackId],
        wait_track: Option<TrackId>,
    ) {
        if let Some(t) = queues[w].pop_front() {
            let d = exec_time(&tasks[t].task, cpu);
            busy[w] = true;
            busy_time[w] += d;
            current[w] = Some(t);
            ins.on_exec(
                &tasks[t],
                w,
                queues.len(),
                now,
                d,
                tracer,
                tracks,
                wait_track,
            );
            q.schedule(now + d, Ev::Finish(w));
        }
    }
}

/// Builds a synthetic task trace: `count` tasks of `flops` work arriving
/// at `home` workers round-robin-skewed by a Zipf draw (irregular load,
/// the case hierarchical HPC apps present). Arrivals are spaced so the
/// offered load slightly exceeds the machine's aggregate capacity (the
/// interesting scheduling regime).
pub fn skewed_trace(
    count: usize,
    workers: usize,
    flops: u64,
    skew: f64,
    seed: u64,
) -> Vec<TaskSpec> {
    // mean task time on an A53-class core ≈ 1.15 flops-equivalents at
    // 1.2 GHz (flops + mem ops + size jitter)
    let task_ns = (flops as f64 * 1.15 / 1.2).ceil() as u64;
    let spacing = (task_ns / workers as u64).max(1) * 9 / 10;
    skewed_trace_with_spacing(count, workers, flops, skew, spacing, seed)
}

/// [`skewed_trace`] with explicit inter-arrival spacing in nanoseconds.
pub fn skewed_trace_with_spacing(
    count: usize,
    workers: usize,
    flops: u64,
    skew: f64,
    spacing_ns: u64,
    seed: u64,
) -> Vec<TaskSpec> {
    use crate::task::TaskId;
    let mut rng = SimRng::seed_from(seed);
    (0..count)
        .map(|i| {
            let home = rng.gen_zipf(workers, skew);
            let jitter = rng.gen_range_u64(0, spacing_ns.max(2) / 2);
            TaskSpec {
                task: Task::new(
                    TaskId(i as u64),
                    "work",
                    vec![flops as f64],
                    flops + rng.gen_range_u64(0, flops / 2 + 1),
                    flops / 10,
                    NodeId(home),
                ),
                arrival: Time::from_ns(i as u64 * spacing_ns + jitter),
            }
        })
        .collect()
}

/// One [`skewed_trace_with_spacing`] per cluster, each with its own seed
/// drawn from `seed` *in cluster index order*. Every cluster's trace is a
/// pure function of `(seed, cluster index)` — independent of how clusters
/// are later packed onto shards — which is what the sharded engine's
/// byte-identity guarantee needs from its workload generator.
pub fn partitioned_traces(
    clusters: usize,
    per_cluster: usize,
    workers: usize,
    flops: u64,
    skew: f64,
    spacing_ns: u64,
    seed: u64,
) -> Vec<Vec<TaskSpec>> {
    let mut root = SimRng::seed_from(seed);
    (0..clusters)
        .map(|_| {
            let s = root.next_u64();
            skewed_trace_with_spacing(per_cluster, workers, flops, skew, spacing_ns, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn uniform_trace(count: usize, flops: u64) -> Vec<TaskSpec> {
        (0..count)
            .map(|i| TaskSpec {
                task: Task::new(TaskId(i as u64), "w", vec![], flops, flops / 10, NodeId(i)),
                arrival: Time::ZERO,
            })
            .collect()
    }

    #[test]
    fn partitioned_traces_are_per_cluster_stable() {
        let all = partitioned_traces(6, 40, 4, 50_000, 1.1, 800, 99);
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|t| t.len() == 40));
        // each cluster's trace depends only on (seed, index), so a prefix
        // regeneration reproduces the same leading clusters
        let prefix = partitioned_traces(3, 40, 4, 50_000, 1.1, 800, 99);
        for (a, b) in prefix.iter().zip(&all) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.arrival, y.arrival);
                assert_eq!(x.task.flops(), y.task.flops());
                assert_eq!(x.task.data_home(), y.task.data_home());
            }
        }
        // distinct clusters get distinct streams
        assert!(all[0]
            .iter()
            .zip(&all[1])
            .any(|(x, y)| x.arrival != y.arrival || x.task.flops() != y.task.flops()));
    }

    #[test]
    fn all_tasks_complete_under_every_policy() {
        let trace = skewed_trace(200, 8, 100_000, 1.0, 7);
        for policy in [
            SchedPolicy::LazyLocal { probes: 2 },
            SchedPolicy::Centralized,
            SchedPolicy::RandomPush,
        ] {
            let r = ClusterSim::new(8, policy, 1).run(&trace);
            assert!(r.makespan > Time::ZERO, "{policy:?}");
            assert!(r.mean_utilization > 0.0, "{policy:?}");
            assert_eq!(r.completed, 200, "{policy:?}");
            assert_eq!(r.lost, 0, "{policy:?}");
            assert_eq!(r.availability, 1.0, "{policy:?}");
        }
    }

    #[test]
    fn lazy_balances_skewed_load() {
        let trace = skewed_trace(400, 16, 200_000, 1.2, 11);
        let lazy = ClusterSim::new(16, SchedPolicy::LazyLocal { probes: 3 }, 1).run(&trace);
        let pushy = ClusterSim::new(16, SchedPolicy::RandomPush, 1).run(&trace);
        // stealing repairs the Zipf skew that random push leaves on the
        // home distribution... random push actually spreads uniformly, so
        // compare against *no* stealing by noting lazy completes sooner
        // than the skewed home assignment would serially imply.
        assert!(lazy.imbalance < 1.0);
        assert!(lazy.makespan.as_ns() <= pushy.makespan.as_ns() * 2);
    }

    #[test]
    fn centralized_pays_dispatch_overhead() {
        let trace = uniform_trace(256, 50_000);
        let central = ClusterSim::new(16, SchedPolicy::Centralized, 1).run(&trace);
        let lazy = ClusterSim::new(16, SchedPolicy::LazyLocal { probes: 2 }, 1).run(&trace);
        assert!(central.sched_overhead > lazy.sched_overhead);
        assert!(central.messages > 0);
    }

    #[test]
    fn centralized_serializes_at_scale() {
        // with many tiny tasks the dispatcher becomes the bottleneck
        let trace = uniform_trace(2000, 5_000);
        let small = ClusterSim::new(4, SchedPolicy::Centralized, 1).run(&trace);
        let big = ClusterSim::new(64, SchedPolicy::Centralized, 1).run(&trace);
        // adding workers cannot help once the dispatcher saturates:
        // makespan stays within 3x instead of scaling by 16x
        assert!(big.makespan.as_ns() as f64 > small.makespan.as_ns() as f64 / 8.0);
    }

    #[test]
    fn single_worker_degenerate() {
        let trace = uniform_trace(10, 10_000);
        let r = ClusterSim::new(1, SchedPolicy::LazyLocal { probes: 1 }, 1).run(&trace);
        assert!(r.max_utilization > 0.9);
        assert!(r.imbalance < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = skewed_trace(100, 8, 80_000, 1.0, 3);
        let a = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 5).run(&trace);
        let b = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 5).run(&trace);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.messages, b.messages);
    }

    /// Golden values pinning the lazy scheduler's probe-backoff timing
    /// before the resilience layer generalized it: the `RetryPolicy`
    /// rewrite must not move a single picosecond or message.
    #[test]
    fn pins_lazy_backoff_golden_values() {
        let trace = skewed_trace(300, 8, 120_000, 1.3, 21);
        let r = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 9).run(&trace);
        assert_eq!(r.makespan.as_ps(), 5_417_607_987);
        assert_eq!(r.sched_overhead.as_ps(), 59_100_000);
        assert_eq!(r.messages, 197);

        let trace = skewed_trace(64, 4, 60_000, 1.0, 5);
        let r = ClusterSim::new(4, SchedPolicy::LazyLocal { probes: 3 }, 2).run(&trace);
        assert_eq!(r.makespan.as_ps(), 1_159_461_494);
        assert_eq!(r.sched_overhead.as_ps(), 14_700_000);
        assert_eq!(r.messages, 49);
    }

    #[test]
    fn skewed_trace_is_skewed() {
        let trace = skewed_trace(1000, 8, 1000, 1.5, 9);
        let mut counts = [0u32; 8];
        for t in &trace {
            counts[t.task.data_home().0] += 1;
        }
        assert!(counts[0] > counts[7] * 2);
    }

    #[test]
    fn instruments_and_trace_capture_executions() {
        let trace = skewed_trace(100, 8, 80_000, 1.0, 3);
        let tracer = Tracer::buffering();
        let mut sim = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 5)
            .with_tracer(tracer, "lane0");
        sim.run(&trace);
        let mut m = MetricsRegistry::new();
        sim.export_metrics(&mut m, "sched");
        assert_eq!(m.counter("sched.tasks"), Some(100));
        assert!(m.counter("sched.probes").unwrap() > 0);
        match m.get("sched.wait_ns") {
            Some(ecoscale_sim::Instrument::Stats(s)) => assert_eq!(s.count(), 100),
            other => panic!("unexpected: {other:?}"),
        }
        // no fault campaign installed: no resilience keys appear
        assert!(m.counter("sched.resilience.failures").is_none());
        let buf = sim.tracer.take();
        let tracks = buf.tracks();
        let complete = |e: &&ecoscale_sim::trace::TraceEvent| {
            matches!(e.kind, ecoscale_sim::trace::EventKind::Complete { .. })
        };
        let exec_spans = buf
            .events()
            .iter()
            .filter(complete)
            .filter(|e| {
                let t = &tracks[e.track.0 as usize];
                t.starts_with("lane0/w") && t != "lane0/wait"
            })
            .count();
        assert_eq!(exec_spans, 100, "one exec span per task");
        // queued tasks additionally record wait spans for ProfPlane
        let wait_spans = buf
            .events()
            .iter()
            .filter(complete)
            .filter(|e| tracks[e.track.0 as usize] == "lane0/wait")
            .count();
        assert!(wait_spans > 0, "overloaded workers must record waits");
        assert!(buf
            .events()
            .iter()
            .filter(complete)
            .all(|e| { tracks[e.track.0 as usize] != "lane0/wait" || e.name == "wait" }));
        assert!(tracks.iter().any(|t| t == "lane0/w0"));
        assert!(tracks.iter().any(|t| t == "lane0/queued"));
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let r = ClusterSim::new(4, SchedPolicy::RandomPush, 1).run(&[]);
        assert_eq!(r.makespan, Time::ZERO);
        assert_eq!(r.messages, 0);
        assert_eq!(r.availability, 1.0);
    }

    #[test]
    fn off_campaign_is_a_no_op() {
        let trace = skewed_trace(200, 8, 100_000, 1.1, 13);
        let base = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 3).run(&trace);
        let mut faulted = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 3)
            .with_faults(&CampaignSpec::off(), ResilienceConfig::full());
        let same = faulted.run(&trace);
        assert_eq!(base, same);
        assert!(faulted.resilience().is_none());
    }

    #[test]
    fn crashes_recover_through_retry() {
        let spec = CampaignSpec::parse("seed=3,crash=1ms").expect("valid spec");
        let trace = skewed_trace(300, 8, 120_000, 1.2, 7);
        let mut sim = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 1)
            .with_faults(&spec, ResilienceConfig::full());
        let r = sim.run(&trace);
        let mgr = sim.resilience().expect("campaign installed");
        assert!(mgr.failures() > 0, "campaign produced no crashes");
        assert_eq!(r.completed + r.lost, 300, "every task accounted for");
        assert!(r.completed > 0);
        assert!(mgr.retries() > 0, "orphans were re-homed");
        assert!(r.availability < 1.0, "downtime must show up");
        assert!(r.availability > 0.5, "bounded availability loss");
    }

    #[test]
    fn no_recovery_loses_orphaned_work() {
        let spec = CampaignSpec::parse("seed=3,crash=1ms").expect("valid spec");
        let trace = skewed_trace(300, 8, 120_000, 1.2, 7);
        let mut none = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 1)
            .with_faults(&spec, ResilienceConfig::none());
        let bare = none.run(&trace);
        let mut full = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 1)
            .with_faults(&spec, ResilienceConfig::full());
        let recovered = full.run(&trace);
        assert_eq!(bare.completed + bare.lost, 300);
        assert!(
            bare.lost > recovered.lost,
            "recovery must save tasks: bare={} full={}",
            bare.lost,
            recovered.lost
        );
    }

    #[test]
    fn stalls_quarantine_persistent_offenders() {
        let spec = CampaignSpec::parse("seed=9,stall=100us,stall_for=200us").expect("valid spec");
        let config = ResilienceConfig {
            quarantine_after: 2,
            ..ResilienceConfig::retry_only()
        };
        let trace = skewed_trace(300, 8, 120_000, 1.2, 7);
        let mut sim =
            ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 1).with_faults(&spec, config);
        let r = sim.run(&trace);
        let mgr = sim.resilience().expect("campaign installed");
        assert!(mgr.quarantines() > 0, "repeat offenders get quarantined");
        assert_eq!(r.completed + r.lost, 300);
        assert!(r.availability < 1.0);
    }

    #[test]
    fn centralized_survives_crashes() {
        let spec = CampaignSpec::parse("seed=5,crash=2ms").expect("valid spec");
        let trace = uniform_trace(256, 50_000);
        let mut sim = ClusterSim::new(8, SchedPolicy::Centralized, 1)
            .with_faults(&spec, ResilienceConfig::full());
        let r = sim.run(&trace);
        assert_eq!(r.completed + r.lost, 256);
        assert!(r.completed > 0);
    }

    #[test]
    fn fault_campaign_is_deterministic() {
        let trace = skewed_trace(200, 8, 100_000, 1.1, 13);
        let run = || {
            let spec = CampaignSpec::parse("seed=7,crash=1ms,stall=500us,stall_for=100us")
                .expect("valid spec");
            let mut sim = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 3)
                .with_faults(&spec, ResilienceConfig::full());
            let r = sim.run(&trace);
            let mgr = sim.resilience().expect("campaign installed");
            (r, mgr.failures(), mgr.retries(), mgr.lost())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faulted_run_exports_resilience_metrics() {
        let spec = CampaignSpec::parse("seed=3,crash=1ms").expect("valid spec");
        let trace = skewed_trace(300, 8, 120_000, 1.2, 7);
        let mut sim = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 1)
            .with_faults(&spec, ResilienceConfig::full());
        sim.run(&trace);
        let mut m = MetricsRegistry::new();
        sim.export_metrics(&mut m, "sched");
        assert!(m.counter("sched.resilience.failures").unwrap() > 0);
        assert!(m.counter("sched.resilience.retries").unwrap() > 0);
    }
}
