//! The runtime reconfiguration daemon and device selector.
//!
//! §4.2: "The runtime scheduler/daemon will read periodically the system
//! status and the History file in order to decide at runtime what
//! functions should be loaded on the reconfiguration block." The daemon
//! ranks functions by predicted benefit — calls × (software time −
//! hardware time) against the reconfiguration cost — and (un)loads
//! modules on a Worker's floorplan accordingly. The
//! [`ReconfigDaemon::select_device`] half answers the per-call question:
//! CPU, local accelerator, or a remote Worker's accelerator (UNILOGIC).

use core::fmt;
use std::collections::{BTreeMap, HashMap};

use ecoscale_fpga::{
    CompressionAlgo, Floorplanner, ModuleId, PlaceError, ReconfigPort, ReconfigStats, SlotId,
};
use ecoscale_hls::ModuleLibrary;
use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::{Duration, Time};

use crate::device::DeviceClass;
use crate::history::ExecutionHistory;
use crate::model::predict_time;

/// Why a module load on the reconfiguration path failed.
///
/// Fault-triggered reconfigurations (SEU repair, module migration) hit
/// this path at runtime, so failures must propagate as values instead of
/// panicking or collapsing into an opaque `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// The module id has no entry in the module library.
    UnknownModule(ModuleId),
    /// The named function was never synthesized into the library.
    UnknownFunction(String),
    /// The module's resource demand exceeds the whole fabric.
    TooLarge(ModuleId),
    /// No contiguous window fits even after defragmentation.
    Fragmented(ModuleId),
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::UnknownModule(m) => write!(f, "module {m:?} is not in the library"),
            ReconfigError::UnknownFunction(name) => {
                write!(f, "function `{name}` has no synthesized module")
            }
            ReconfigError::TooLarge(m) => write!(f, "module {m:?} exceeds the fabric capacity"),
            ReconfigError::Fragmented(m) => {
                write!(f, "module {m:?} does not fit even after defragmentation")
            }
        }
    }
}

impl std::error::Error for ReconfigError {}

/// Daemon tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonConfig {
    /// How often the daemon re-evaluates the loadout.
    pub period: Duration,
    /// A function must out-benefit the reconfiguration cost by this
    /// factor before the daemon loads it.
    pub benefit_margin: f64,
    /// Bitstream storage compression.
    pub compression: CompressionAlgo,
    /// Estimated latency penalty factor for calling a *remote* module
    /// (cache disabled over the UNILOGIC path).
    pub remote_penalty: f64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            period: Duration::from_ms(10),
            benefit_margin: 1.5,
            compression: CompressionAlgo::Lz,
            remote_penalty: 3.0,
        }
    }
}

/// The per-Worker daemon: owns the floorplan of one reconfigurable block.
#[derive(Debug)]
pub struct ReconfigDaemon {
    config: DaemonConfig,
    port: ReconfigPort,
    floorplan: Floorplanner,
    // BTreeMap, not HashMap: residency is iterated by the FaultPlane
    // (SEU draws per resident module) and by eviction tie-breaking, so
    // the order must be deterministic across threads and processes.
    loaded: BTreeMap<ModuleId, SlotId>,
    stats: ReconfigStats,
    last_eval: Time,
}

impl ReconfigDaemon {
    /// Creates a daemon over an (empty) floorplan.
    pub fn new(config: DaemonConfig, floorplan: Floorplanner) -> ReconfigDaemon {
        ReconfigDaemon {
            config,
            port: ReconfigPort::default(),
            floorplan,
            loaded: BTreeMap::new(),
            stats: ReconfigStats::default(),
            last_eval: Time::ZERO,
        }
    }

    /// Currently loaded modules.
    pub fn loaded(&self) -> impl Iterator<Item = ModuleId> + '_ {
        self.loaded.keys().copied()
    }

    /// Returns `true` if `module` is resident.
    pub fn is_loaded(&self, module: ModuleId) -> bool {
        self.loaded.contains_key(&module)
    }

    /// Reconfiguration activity so far.
    pub fn stats(&self) -> ReconfigStats {
        self.stats
    }

    /// The floorplan (for fragmentation metrics).
    pub fn floorplan(&self) -> &Floorplanner {
        &self.floorplan
    }

    /// CheckPlane hook: the daemon's loaded-module map and the
    /// floorplanner's placements must describe the same residency — every
    /// loaded module occupies exactly the slot recorded for it, and every
    /// placed slot hosts a loaded module. Delegates region-exclusivity
    /// checks to [`Floorplanner::check_invariants`]. Read-only; early-outs
    /// when `cp` is disabled.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        self.floorplan.check_invariants(cp);
        for (&module, &slot) in &self.loaded {
            cp.check(
                invariant::FABRIC_RESIDENCY_AGREES,
                self.floorplan
                    .placement(slot)
                    .is_some_and(|p| p.module == module),
                || format!("loaded module {module} claims {slot} but the floorplan disagrees"),
            );
        }
        let placed = self.floorplan.placements().count();
        cp.check(
            invariant::FABRIC_RESIDENCY_AGREES,
            placed == self.loaded.len(),
            || {
                format!(
                    "{placed} floorplan placements for {} loaded modules",
                    self.loaded.len()
                )
            },
        );
    }

    /// Serializes the daemon's mutable state: the floorplan, residency
    /// map, reconfiguration stats, and evaluation cursor. The config and
    /// port parameters are structural and not written.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        self.floorplan.snapshot_state(w);
        w.put_usize(self.loaded.len());
        for (&m, &s) in &self.loaded {
            w.put_u32(m.0);
            w.put_u32(s.0);
        }
        self.stats.snapshot(w);
        w.put_time(self.last_eval);
    }

    /// Overlays state captured by [`ReconfigDaemon::snapshot_state`]
    /// onto this daemon, which must wrap an identical fabric.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncated or unsorted data, or
    /// a residency entry whose slot the floorplan does not host.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        self.floorplan.restore_state(r)?;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "daemon claims {n} resident modules but only {} bytes remain",
                r.remaining()
            )));
        }
        self.loaded.clear();
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let m = r.get_u32()?;
            let s = r.get_u32()?;
            if prev.is_some_and(|p| p >= m) {
                return Err(malformed(format!("residency map unsorted at index {i}")));
            }
            prev = Some(m);
            let (m, s) = (ModuleId(m), SlotId(s));
            if self.floorplan.placement(s).is_none_or(|p| p.module != m) {
                return Err(malformed(format!(
                    "resident module {m} claims slot {s} but the floorplan disagrees"
                )));
            }
            self.loaded.insert(m, s);
        }
        if self.loaded.len() != self.floorplan.placements().count() {
            return Err(malformed(format!(
                "{} floorplan placements for {} resident modules",
                self.floorplan.placements().count(),
                self.loaded.len()
            )));
        }
        self.stats = ReconfigStats::restore(r)?;
        self.last_eval = r.get_time()?;
        Ok(())
    }

    /// Explicitly loads `module` from `library`, defragmenting on
    /// fragmentation failure. Returns the reconfiguration latency
    /// (`Duration::ZERO` when already resident).
    ///
    /// # Errors
    ///
    /// [`ReconfigError`] describing why the module cannot be placed.
    pub fn load(
        &mut self,
        library: &ModuleLibrary,
        module: ModuleId,
    ) -> Result<Duration, ReconfigError> {
        if self.loaded.contains_key(&module) {
            return Ok(Duration::ZERO);
        }
        let entry = library
            .by_id(module)
            .ok_or(ReconfigError::UnknownModule(module))?;
        let need = entry.module.resources();
        let slot = match self.floorplan.place(module, need) {
            Ok(s) => s,
            Err(PlaceError::Fragmented { .. }) => {
                // §4.3 middleware: defragment, migrating live modules.
                let migrations = self.floorplan.defragment();
                for (slot, _, _) in &migrations {
                    // each migration is one partial reconfiguration of the
                    // module occupying that slot
                    let mid = self.floorplan.placement(*slot).map(|p| p.module);
                    if let Some(mid) = mid {
                        if let Some(e) = library.by_id(mid) {
                            self.port.load(
                                e.module.bitstream(),
                                self.config.compression,
                                &mut self.stats,
                            );
                        }
                    }
                }
                self.floorplan
                    .place(module, need)
                    .map_err(|_| ReconfigError::Fragmented(module))?
            }
            Err(PlaceError::TooLarge) => return Err(ReconfigError::TooLarge(module)),
        };
        self.loaded.insert(module, slot);
        let lat = self.port.load(
            entry.module.bitstream(),
            self.config.compression,
            &mut self.stats,
        );
        Ok(lat)
    }

    /// Unloads `module`, freeing its slot.
    pub fn unload(&mut self, module: ModuleId) -> bool {
        match self.loaded.remove(&module) {
            Some(slot) => self.floorplan.remove(slot),
            None => false,
        }
    }

    /// Benefit of having `function` in hardware: recorded calls times the
    /// measured software–hardware gap (`None` if software was never
    /// measured or hardware would not help).
    fn benefit(
        &self,
        history: &ExecutionHistory,
        library: &ModuleLibrary,
        function: &str,
    ) -> Option<f64> {
        let entry = library.get(function)?;
        let t_sw = history.mean_time(function, DeviceClass::Cpu)?;
        let t_hw = history
            .mean_time(function, DeviceClass::FpgaLocal)
            .unwrap_or_else(|| entry.module.single_latency());
        if t_sw <= t_hw {
            return None;
        }
        Some(history.call_count(function) as f64 * (t_sw.as_ns_f64() - t_hw.as_ns_f64()))
    }

    /// Periodic evaluation: examines the history's hottest functions and
    /// loads the most beneficial modules, evicting lower-benefit resident
    /// modules when the fabric is full. Returns the modules (newly)
    /// loaded this round.
    pub fn evaluate(
        &mut self,
        now: Time,
        history: &ExecutionHistory,
        library: &ModuleLibrary,
    ) -> Vec<ModuleId> {
        if now.saturating_since(self.last_eval) < self.config.period && self.last_eval > Time::ZERO
        {
            return Vec::new();
        }
        self.last_eval = now;
        let mut newly = Vec::new();
        // Benefit of every synthesizable function (resident or not).
        let mut benefit_of: HashMap<ModuleId, f64> = HashMap::new();
        let mut ranked: Vec<(ModuleId, f64)> = Vec::new();
        for (function, _) in history.hottest_functions() {
            let Some(entry) = library.get(&function) else {
                continue;
            };
            let Some(benefit) = self.benefit(history, library, &function) else {
                continue;
            };
            benefit_of.insert(entry.module.id(), benefit);
            let (reconfig_cost, _) = self
                .port
                .load_cost(entry.module.bitstream(), self.config.compression);
            if benefit > reconfig_cost.as_ns_f64() * self.config.benefit_margin {
                ranked.push((entry.module.id(), benefit));
            }
        }
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("benefits are finite"));
        for (module, benefit) in ranked {
            if self.is_loaded(module) {
                continue;
            }
            if self.load(library, module).is_ok() {
                newly.push(module);
                continue;
            }
            // fabric full: evict strictly-lower-benefit residents, lowest
            // first, until the candidate fits or nothing cheap remains
            let mut residents: Vec<(ModuleId, f64)> = self
                .loaded()
                .map(|m| (m, benefit_of.get(&m).copied().unwrap_or(0.0)))
                .collect();
            residents.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("benefits are finite"));
            for (victim, victim_benefit) in residents {
                if victim_benefit >= benefit {
                    break;
                }
                self.unload(victim);
                if self.load(library, module).is_ok() {
                    newly.push(module);
                    break;
                }
            }
        }
        newly
    }

    /// Chooses the device for one call of `function` with `features`,
    /// given whether a local/remote instance of the module is resident.
    ///
    /// With history on both devices, predicted times decide; without, the
    /// call runs on the CPU (measurement-first policy, so the history
    /// fills in).
    pub fn select_device(
        &self,
        history: &ExecutionHistory,
        function: &str,
        features: &[f64],
        local_loaded: bool,
        remote_loaded: bool,
    ) -> DeviceClass {
        let t_cpu = predict_time(history, function, DeviceClass::Cpu, features);
        let t_hw = predict_time(history, function, DeviceClass::FpgaLocal, features);
        match (t_cpu, t_hw) {
            (Some(cpu), Some(hw)) => {
                let local = if local_loaded { Some(hw) } else { None };
                let remote = if remote_loaded {
                    Some(hw.mul_f64(self.config.remote_penalty))
                } else {
                    None
                };
                let mut best = (DeviceClass::Cpu, cpu);
                if let Some(l) = local {
                    if l < best.1 {
                        best = (DeviceClass::FpgaLocal, l);
                    }
                }
                if let Some(r) = remote {
                    if r < best.1 {
                        best = (DeviceClass::FpgaRemote, r);
                    }
                }
                best.0
            }
            (None, _) => DeviceClass::Cpu, // measure software first
            (Some(_), None) => {
                if local_loaded {
                    DeviceClass::FpgaLocal // measure hardware once loaded
                } else {
                    DeviceClass::Cpu
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_fpga::{Fabric, Resources};
    use ecoscale_hls::parse_kernel;
    use ecoscale_sim::Energy;

    fn library() -> ModuleLibrary {
        let k1 = parse_kernel(
            "kernel hot(in float a[], out float b[], int n) {
                 for (i in 0 .. n) { b[i] = a[i] * 2.0 + 1.0; }
             }",
        )
        .unwrap();
        let k2 = parse_kernel(
            "kernel cold(in float a[], out float b[], int n) {
                 for (i in 0 .. n) { b[i] = a[i] + 1.0; }
             }",
        )
        .unwrap();
        let hints = HashMap::from([("n".to_owned(), 4096.0)]);
        ModuleLibrary::synthesize(
            &[(k1, hints.clone()), (k2, hints)],
            Resources::new(4000, 64, 64),
        )
        .unwrap()
    }

    fn daemon() -> ReconfigDaemon {
        ReconfigDaemon::new(
            DaemonConfig::default(),
            Floorplanner::new(Fabric::zynq_like(60, 80)),
        )
    }

    #[test]
    fn explicit_load_unload() {
        let lib = library();
        let mut d = daemon();
        let id = lib.get("hot").unwrap().module.id();
        let lat = d.load(&lib, id).unwrap();
        assert!(lat > Duration::ZERO);
        assert!(d.is_loaded(id));
        assert_eq!(d.load(&lib, id), Ok(Duration::ZERO)); // already resident
        assert!(d.unload(id));
        assert!(!d.unload(id));
        assert_eq!(d.stats().loads, 1);
    }

    #[test]
    fn evaluate_loads_hot_beneficial_function() {
        let lib = library();
        let mut d = daemon();
        let mut h = ExecutionHistory::new(64);
        // hot: many slow CPU calls
        for _ in 0..5000 {
            h.record(
                "hot",
                DeviceClass::Cpu,
                vec![4096.0],
                Duration::from_ms(5),
                Energy::ZERO,
            );
        }
        // cold: one call
        h.record(
            "cold",
            DeviceClass::Cpu,
            vec![4096.0],
            Duration::from_us(5),
            Energy::ZERO,
        );
        let loaded = d.evaluate(Time::from_ms(100), &h, &lib);
        let hot_id = lib.get("hot").unwrap().module.id();
        assert!(loaded.contains(&hot_id));
        let cold_id = lib.get("cold").unwrap().module.id();
        assert!(
            !loaded.contains(&cold_id),
            "cold function must not be loaded"
        );
    }

    #[test]
    fn evaluate_respects_period() {
        let lib = library();
        let mut d = daemon();
        let mut h = ExecutionHistory::new(64);
        for _ in 0..5000 {
            h.record(
                "hot",
                DeviceClass::Cpu,
                vec![4096.0],
                Duration::from_ms(5),
                Energy::ZERO,
            );
        }
        let first = d.evaluate(Time::from_ms(50), &h, &lib);
        assert!(!first.is_empty());
        // 1 us later: inside the period, no re-evaluation
        let second = d.evaluate(Time::from_ms(50) + Duration::from_us(1), &h, &lib);
        assert!(second.is_empty());
    }

    #[test]
    fn no_benefit_no_load() {
        let lib = library();
        let mut d = daemon();
        let mut h = ExecutionHistory::new(64);
        // CPU is already fast: microsecond calls, few of them
        for _ in 0..3 {
            h.record(
                "hot",
                DeviceClass::Cpu,
                vec![16.0],
                Duration::from_us(1),
                Energy::ZERO,
            );
        }
        let loaded = d.evaluate(Time::from_ms(100), &h, &lib);
        assert!(loaded.is_empty());
    }

    #[test]
    fn select_device_prefers_measured_winner() {
        let lib = library();
        let d = daemon();
        let _ = &lib;
        let mut h = ExecutionHistory::new(64);
        for i in 1..=10u64 {
            h.record(
                "f",
                DeviceClass::Cpu,
                vec![i as f64],
                Duration::from_us(10 * i),
                Energy::ZERO,
            );
            h.record(
                "f",
                DeviceClass::FpgaLocal,
                vec![i as f64],
                Duration::from_us(i),
                Energy::ZERO,
            );
        }
        assert_eq!(
            d.select_device(&h, "f", &[5.0], true, false),
            DeviceClass::FpgaLocal
        );
        // not loaded locally but loaded remotely: remote wins only if the
        // penalty keeps it under CPU (10x gap vs 3x penalty -> remote wins)
        assert_eq!(
            d.select_device(&h, "f", &[5.0], false, true),
            DeviceClass::FpgaRemote
        );
        // nothing loaded: CPU
        assert_eq!(
            d.select_device(&h, "f", &[5.0], false, false),
            DeviceClass::Cpu
        );
    }

    #[test]
    fn select_device_measures_first() {
        let d = daemon();
        let h = ExecutionHistory::new(64);
        assert_eq!(
            d.select_device(&h, "new_fn", &[1.0], true, true),
            DeviceClass::Cpu
        );
    }

    #[test]
    fn load_defragments_when_needed() {
        // small modules (tight DSE budget) on a small fabric that
        // fragments quickly
        let k1 = parse_kernel(
            "kernel hot(in float a[], out float b[], int n) {
                 for (i in 0 .. n) { b[i] = a[i] * 2.0 + 1.0; }
             }",
        )
        .unwrap();
        let k2 = parse_kernel(
            "kernel cold(in float a[], out float b[], int n) {
                 for (i in 0 .. n) { b[i] = a[i] + 1.0; }
             }",
        )
        .unwrap();
        let hints = HashMap::from([("n".to_owned(), 4096.0)]);
        let lib = ModuleLibrary::synthesize(
            &[(k1, hints.clone()), (k2, hints)],
            Resources::new(700, 16, 16),
        )
        .unwrap();
        let mut d = ReconfigDaemon::new(
            DaemonConfig::default(),
            Floorplanner::new(Fabric::zynq_like(26, 80)),
        );
        let hot = lib.get("hot").unwrap().module.id();
        let cold = lib.get("cold").unwrap().module.id();
        d.load(&lib, hot).unwrap();
        d.load(&lib, cold).unwrap();
        // unload first, leaving a hole at the left
        d.unload(hot);
        // load again; may require compaction depending on widths — must
        // succeed either way
        assert!(d.load(&lib, hot).is_ok());
    }

    #[test]
    fn load_reports_typed_errors() {
        let mut d = daemon();
        let lib = library();
        let bogus = ModuleId(9999);
        assert_eq!(
            d.load(&lib, bogus),
            Err(ReconfigError::UnknownModule(bogus))
        );
        let err = ReconfigError::UnknownFunction("ghost".to_owned());
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let lib = library();
        let mut d = daemon();
        let hot = lib.get("hot").unwrap().module.id();
        let cold = lib.get("cold").unwrap().module.id();
        d.load(&lib, hot).unwrap();
        d.load(&lib, cold).unwrap();
        d.unload(cold);
        let mut w = ecoscale_sim::SnapWriter::new();
        d.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = daemon();
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(
            bytes,
            w2.into_bytes(),
            "restored daemon re-serializes differently"
        );
        assert!(fresh.is_loaded(hot));
        assert!(!fresh.is_loaded(cold));
        assert_eq!(fresh.stats().loads, d.stats().loads);
        // residency survived: re-load of the hot module is free
        assert_eq!(fresh.load(&lib, hot), Ok(Duration::ZERO));

        for cut in 0..bytes.len() {
            let mut p = daemon();
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                p.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }
}
