//! The inter-Compute-Node MPI layer.
//!
//! §2/§4: Compute Nodes (PGAS sub-systems) talk to each other "via an
//! MPI-based multi-layer interconnection" following the application's
//! topology. [`MpiComm`] provides point-to-point transfers and the
//! collectives the workloads need (barrier, broadcast, reduce, allreduce,
//! alltoall), all costed through the [`Network`] model so topology and
//! contention matter.

use ecoscale_noc::{Network, NodeId, Topology};
use ecoscale_sim::{Energy, Time};

/// Accumulated MPI traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MpiStats {
    /// Point-to-point and collective messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Interconnect energy attributed to MPI.
    pub energy: Energy,
}

/// An MPI communicator whose ranks are Compute-Node representatives on
/// the Worker interconnect.
///
/// Rank `r` is pinned to endpoint `rank_stride × r` — the first Worker of
/// each Compute Node.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{Network, NetworkConfig, TreeTopology};
/// use ecoscale_runtime::MpiComm;
/// use ecoscale_sim::Time;
///
/// let mut net = Network::new(TreeTopology::new(&[4, 4]), NetworkConfig::default());
/// let mut mpi = MpiComm::new(4, 4); // 4 ranks, one per 4-worker node
/// let t = mpi.send(&mut net, Time::ZERO, 0, 3, 4096);
/// assert!(t > Time::ZERO);
/// assert_eq!(mpi.stats().messages, 1);
/// ```
#[derive(Debug)]
pub struct MpiComm {
    ranks: usize,
    rank_stride: usize,
    stats: MpiStats,
}

impl MpiComm {
    /// Creates a communicator of `ranks` ranks, each pinned to every
    /// `rank_stride`-th interconnect endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` or `rank_stride` is zero.
    pub fn new(ranks: usize, rank_stride: usize) -> MpiComm {
        assert!(ranks > 0, "need at least one rank");
        assert!(rank_stride > 0, "stride must be positive");
        MpiComm {
            ranks,
            rank_stride,
            stats: MpiStats::default(),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The interconnect endpoint of `rank`.
    pub fn endpoint(&self, rank: usize) -> NodeId {
        assert!(rank < self.ranks, "rank {rank} out of range");
        NodeId(rank * self.rank_stride)
    }

    /// Traffic so far.
    pub fn stats(&self) -> MpiStats {
        self.stats
    }

    /// Point-to-point send; returns the completion (receive) time.
    pub fn send<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        from: usize,
        to: usize,
        bytes: u64,
    ) -> Time {
        let d = net.transfer(now, self.endpoint(from), self.endpoint(to), bytes);
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        self.stats.energy += d.energy;
        d.arrival
    }

    /// Barrier: binomial-tree gather to rank 0 then broadcast; returns
    /// the time every rank has left the barrier.
    pub fn barrier<T: Topology>(&mut self, net: &mut Network<T>, now: Time) -> Time {
        let up = self.reduce_time(net, now, 8);
        self.bcast_from(net, up, 0, 8)
    }

    /// Broadcast `bytes` from `root`; returns the time the last rank has
    /// the data.
    pub fn bcast<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        root: usize,
        bytes: u64,
    ) -> Time {
        self.bcast_from(net, now, root, bytes)
    }

    fn bcast_from<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        root: usize,
        bytes: u64,
    ) -> Time {
        // binomial tree over ranks relative to root: in round `k`
        // (stride 2^k), every rank that already has the data (rel <
        // stride) sends to rel + stride.
        let n = self.ranks;
        let mut have: Vec<Option<Time>> = vec![None; n];
        have[root] = Some(now);
        let mut latest = now;
        let mut stride = 1usize;
        while stride < n {
            for rel in 0..stride {
                if rel + stride >= n {
                    break;
                }
                let src = (rel + root) % n;
                let dst = (rel + stride + root) % n;
                let t0 = have[src].expect("rel < stride implies data present");
                debug_assert!(have[dst].is_none());
                let t = self.send(net, t0, src, dst, bytes);
                have[dst] = Some(t);
                latest = latest.max(t);
            }
            stride *= 2;
        }
        latest
    }

    /// Reduce to rank 0 (binomial tree); returns the completion time at
    /// the root.
    pub fn reduce<T: Topology>(&mut self, net: &mut Network<T>, now: Time, bytes: u64) -> Time {
        self.reduce_time(net, now, bytes)
    }

    fn reduce_time<T: Topology>(&mut self, net: &mut Network<T>, now: Time, bytes: u64) -> Time {
        let n = self.ranks;
        let mut ready: Vec<Time> = vec![now; n];
        let mut stride = 1usize;
        while stride < n {
            for r in (0..n).step_by(stride * 2) {
                let partner = r + stride;
                if partner < n {
                    let t = self.send(net, ready[partner].max(ready[r]), partner, r, bytes);
                    ready[r] = t;
                }
            }
            stride *= 2;
        }
        ready[0]
    }

    /// Allreduce = reduce + broadcast.
    pub fn allreduce<T: Topology>(&mut self, net: &mut Network<T>, now: Time, bytes: u64) -> Time {
        let t = self.reduce_time(net, now, bytes);
        self.bcast_from(net, t, 0, bytes)
    }

    /// All-to-all personalized exchange of `bytes_per_pair`; returns the
    /// time the last byte lands.
    pub fn alltoall<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        bytes_per_pair: u64,
    ) -> Time {
        let mut latest = now;
        for from in 0..self.ranks {
            for to in 0..self.ranks {
                if from != to {
                    let t = self.send(net, now, from, to, bytes_per_pair);
                    latest = latest.max(t);
                }
            }
        }
        latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_noc::{NetworkConfig, TreeTopology};

    fn net() -> Network<TreeTopology> {
        Network::new(TreeTopology::new(&[4, 4, 4]), NetworkConfig::default())
    }

    #[test]
    fn send_completes_and_counts() {
        let mut n = net();
        let mut mpi = MpiComm::new(8, 8);
        let t = mpi.send(&mut n, Time::ZERO, 0, 7, 1 << 16);
        assert!(t > Time::ZERO);
        assert_eq!(mpi.stats().messages, 1);
        assert_eq!(mpi.stats().bytes, 1 << 16);
        assert!(mpi.stats().energy.as_pj() > 0.0);
    }

    #[test]
    fn endpoint_mapping() {
        let mpi = MpiComm::new(4, 16);
        assert_eq!(mpi.endpoint(0), NodeId(0));
        assert_eq!(mpi.endpoint(3), NodeId(48));
        assert_eq!(mpi.ranks(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        MpiComm::new(2, 1).endpoint(2);
    }

    #[test]
    fn bcast_reaches_everyone_in_log_rounds() {
        let mut n = net();
        let mut mpi = MpiComm::new(8, 8);
        let t = mpi.bcast(&mut n, Time::ZERO, 0, 4096);
        assert!(t > Time::ZERO);
        // binomial: n-1 messages
        assert_eq!(mpi.stats().messages, 7);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let mut n = net();
        let mut mpi = MpiComm::new(5, 8);
        let t = mpi.bcast(&mut n, Time::ZERO, 3, 128);
        assert!(t > Time::ZERO);
        assert_eq!(mpi.stats().messages, 4);
    }

    #[test]
    fn reduce_and_allreduce() {
        let mut n = net();
        let mut mpi = MpiComm::new(8, 8);
        let t1 = mpi.reduce(&mut n, Time::ZERO, 1024);
        assert_eq!(mpi.stats().messages, 7);
        let t2 = mpi.allreduce(&mut n, t1, 1024);
        assert!(t2 > t1);
        assert_eq!(mpi.stats().messages, 7 + 14);
    }

    #[test]
    fn barrier_orders_all_ranks() {
        let mut n = net();
        let mut mpi = MpiComm::new(4, 16);
        let t = mpi.barrier(&mut n, Time::from_us(5));
        assert!(t > Time::from_us(5));
    }

    #[test]
    fn alltoall_quadratic_messages() {
        let mut n = net();
        let mut mpi = MpiComm::new(6, 8);
        let t = mpi.alltoall(&mut n, Time::ZERO, 256);
        assert!(t > Time::ZERO);
        assert_eq!(mpi.stats().messages, 30);
    }

    #[test]
    fn bigger_payload_takes_longer() {
        let mut n1 = net();
        let mut m1 = MpiComm::new(4, 16);
        let small = m1.bcast(&mut n1, Time::ZERO, 0, 1024);
        let mut n2 = net();
        let mut m2 = MpiComm::new(4, 16);
        let big = m2.bcast(&mut n2, Time::ZERO, 0, 1 << 22);
        assert!(big > small);
    }
}
