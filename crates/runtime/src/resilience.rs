//! Recovery policy for the FaultPlane: bounded retry, software fallback,
//! reconfig-repair, and quarantine.
//!
//! The injection hooks live with the components they fault (NoC links,
//! SMMU, DRAM ECC, fabric SEUs, workers); this module owns what the
//! runtime *does* about a fault:
//!
//! * [`RetryPolicy`] / [`Backoff`] — bounded retry with exponential
//!   backoff. This generalizes the probe backoff the lazy scheduler has
//!   always used (`sched.rs`): with `base = probe_latency × 8` and
//!   `cap = probe_latency × 32` the delay sequence is bit-identical to
//!   the hand-rolled `(backoff + 1).min(3)` shift ladder.
//! * [`ResilienceConfig`] — which recovery mechanisms are armed,
//! * [`ResilienceManager`] — strike counting, quarantine of persistently
//!   failing domains, and the fault/recovery instruments (MTTF,
//!   recovery-latency histogram, per-mechanism counters) exported
//!   through the metrics layer.

use std::collections::{BTreeMap, BTreeSet};

use ecoscale_sim::{Counter, Duration, Histogram, MetricsRegistry, OnlineStats, Time};

/// Bounded retry with exponential backoff.
///
/// Attempt `k` (1-based) is delayed by `min(base · 2^(k-1), cap)`; after
/// `max_attempts` failures the operation is abandoned.
///
/// # Example
///
/// The scheduler's historical shift ladder
/// `wait = probe × (4 << min(k, 3))` is this policy with
/// `base = probe × 8`, `cap = probe × 32`:
///
/// ```
/// use ecoscale_runtime::resilience::RetryPolicy;
/// use ecoscale_sim::Duration;
///
/// let probe = Duration::from_ns(300);
/// let policy = RetryPolicy::new(probe * 8, probe * 32, RetryPolicy::UNBOUNDED);
/// assert_eq!(policy.delay(1), probe * 8);
/// assert_eq!(policy.delay(2), probe * 16);
/// assert_eq!(policy.delay(3), probe * 32);
/// assert_eq!(policy.delay(9), probe * 32); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Attempts before giving up ([`RetryPolicy::UNBOUNDED`] = never).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// `max_attempts` value meaning "retry forever".
    pub const UNBOUNDED: u32 = u32::MAX;

    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`.
    pub fn new(base: Duration, cap: Duration, max_attempts: u32) -> RetryPolicy {
        assert!(!base.is_zero(), "base delay must be positive");
        assert!(cap >= base, "cap must be at least base");
        RetryPolicy {
            base,
            cap,
            max_attempts,
        }
    }

    /// The delay before (1-based) attempt `attempt`.
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero.
    pub fn delay(&self, attempt: u32) -> Duration {
        assert!(attempt > 0, "attempts are 1-based");
        // Once the shift saturates the cap takes over, so clamp it to
        // keep the multiply in range.
        let shift = (attempt - 1).min(32);
        let raw = self.base * (1u64 << shift);
        raw.min(self.cap)
    }
}

/// Per-operation retry state driven by a [`RetryPolicy`].
///
/// ```
/// use ecoscale_runtime::resilience::{Backoff, RetryPolicy};
/// use ecoscale_sim::Duration;
///
/// let policy = RetryPolicy::new(Duration::from_us(1), Duration::from_us(4), 3);
/// let mut b = Backoff::new();
/// assert_eq!(b.next(&policy), Some(Duration::from_us(1)));
/// assert_eq!(b.next(&policy), Some(Duration::from_us(2)));
/// assert_eq!(b.next(&policy), Some(Duration::from_us(4)));
/// assert_eq!(b.next(&policy), None); // exhausted
/// b.reset();
/// assert_eq!(b.next(&policy), Some(Duration::from_us(1)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Backoff {
    attempts: u32,
}

impl Backoff {
    /// Fresh state: no attempts made.
    pub fn new() -> Backoff {
        Backoff::default()
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Registers a failure and returns the delay before the next
    /// attempt, or `None` once the policy's budget is exhausted.
    pub fn next(&mut self, policy: &RetryPolicy) -> Option<Duration> {
        if self.attempts >= policy.max_attempts {
            return None;
        }
        self.attempts += 1;
        Some(policy.delay(self.attempts))
    }

    /// Clears the state after a success.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }
}

/// Which recovery mechanisms are armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retry faulted operations with this backoff.
    pub retry: Option<RetryPolicy>,
    /// Execute on the CPU when the chosen accelerator is faulted.
    pub software_fallback: bool,
    /// Re-load upset fabric modules through the ReconfigDaemon.
    pub repair_reconfig: bool,
    /// Quarantine a domain after this many failures (0 = never).
    pub quarantine_after: u32,
}

impl ResilienceConfig {
    /// No recovery at all: faults take their full toll. The baseline
    /// policy in the resilience experiments.
    pub fn none() -> ResilienceConfig {
        ResilienceConfig {
            retry: None,
            software_fallback: false,
            repair_reconfig: false,
            quarantine_after: 0,
        }
    }

    /// Retry only, with the scheduler's historical backoff shape.
    pub fn retry_only() -> ResilienceConfig {
        ResilienceConfig {
            retry: Some(RetryPolicy::new(
                Duration::from_us(2),
                Duration::from_us(16),
                8,
            )),
            ..ResilienceConfig::none()
        }
    }

    /// Everything armed: retry, fallback, reconfig-repair, and
    /// quarantine after three strikes.
    pub fn full() -> ResilienceConfig {
        ResilienceConfig {
            retry: Some(RetryPolicy::new(
                Duration::from_us(2),
                Duration::from_us(16),
                8,
            )),
            software_fallback: true,
            repair_reconfig: true,
            quarantine_after: 3,
        }
    }
}

/// A fault domain the manager tracks strikes against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Domain {
    /// A worker (compute node slice).
    Worker(usize),
    /// A configured fabric module.
    Module(u32),
    /// A NoC link.
    Link(u64),
}

/// Tracks failures per [`Domain`], decides quarantine, and accumulates
/// the fault/recovery instruments.
///
/// Deterministic by construction: all state lives in ordered maps, so
/// metric export order is stable.
#[derive(Debug, Clone)]
pub struct ResilienceManager {
    config: ResilienceConfig,
    strikes: BTreeMap<Domain, u32>,
    quarantined: BTreeSet<Domain>,
    last_failure: Option<Time>,
    failures: Counter,
    retries: Counter,
    fallbacks: Counter,
    repairs: Counter,
    quarantines: Counter,
    lost: Counter,
    recovery_ns: Histogram,
    mtbf_ns: OnlineStats,
}

impl ResilienceManager {
    /// A manager applying `config`.
    pub fn new(config: ResilienceConfig) -> ResilienceManager {
        ResilienceManager {
            config,
            strikes: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            last_failure: None,
            failures: Counter::default(),
            retries: Counter::default(),
            fallbacks: Counter::default(),
            repairs: Counter::default(),
            quarantines: Counter::default(),
            lost: Counter::default(),
            recovery_ns: Histogram::default(),
            mtbf_ns: OnlineStats::default(),
        }
    }

    /// The active config.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Records a failure of `domain` at `now`. Updates the observed
    /// inter-failure gap (MTBF) and the domain's strike count; once the
    /// count reaches `quarantine_after` the domain is quarantined and
    /// `true` is returned (exactly once per domain).
    pub fn record_failure(&mut self, domain: Domain, now: Time) -> bool {
        self.failures.incr();
        if let Some(prev) = self.last_failure {
            self.mtbf_ns.record(now.saturating_since(prev).as_ns_f64());
        }
        self.last_failure = Some(now);
        let strikes = self.strikes.entry(domain).or_insert(0);
        *strikes += 1;
        if self.config.quarantine_after > 0
            && *strikes >= self.config.quarantine_after
            && self.quarantined.insert(domain)
        {
            self.quarantines.incr();
            return true;
        }
        false
    }

    /// Whether `domain` has been quarantined.
    pub fn is_quarantined(&self, domain: Domain) -> bool {
        self.quarantined.contains(&domain)
    }

    /// Every quarantined domain, in deterministic (ordered) form — the
    /// evidence the telemetry plane's quarantine trigger names in its
    /// flight-recorder dump.
    pub fn quarantined_domains(&self) -> Vec<Domain> {
        self.quarantined.iter().copied().collect()
    }

    /// Clears a domain's strikes after sustained healthy operation.
    /// Quarantine is sticky: a quarantined domain stays out.
    pub fn clear_strikes(&mut self, domain: Domain) {
        self.strikes.remove(&domain);
    }

    /// Strike count for a domain.
    pub fn strikes(&self, domain: Domain) -> u32 {
        self.strikes.get(&domain).copied().unwrap_or(0)
    }

    /// Counts one retry issued.
    pub fn note_retry(&mut self) {
        self.retries.incr();
    }

    /// Counts one software-fallback execution.
    pub fn note_fallback(&mut self) {
        self.fallbacks.incr();
    }

    /// Counts one reconfig-repair and its fault→healthy latency.
    pub fn note_repair(&mut self, recovery: Duration) {
        self.repairs.incr();
        self.recovery_ns.record(recovery.as_ns());
    }

    /// Counts recovery latency for a non-repair mechanism (e.g. a task
    /// re-homed off a crashed worker).
    pub fn note_recovery(&mut self, recovery: Duration) {
        self.recovery_ns.record(recovery.as_ns());
    }

    /// Counts one unit of work abandoned (retry budget exhausted or no
    /// recovery armed).
    pub fn note_lost(&mut self) {
        self.lost.incr();
    }

    /// Total failures observed.
    pub fn failures(&self) -> u64 {
        self.failures.get()
    }

    /// Retries issued.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Software fallbacks taken.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.get()
    }

    /// Reconfig repairs performed.
    pub fn repairs(&self) -> u64 {
        self.repairs.get()
    }

    /// Domains quarantined.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.get()
    }

    /// Work units abandoned.
    pub fn lost(&self) -> u64 {
        self.lost.get()
    }

    /// Mean observed time between failures, if at least two failures
    /// were seen.
    pub fn mtbf(&self) -> Option<Duration> {
        (self.mtbf_ns.count() > 0).then(|| Duration::from_ns_f64(self.mtbf_ns.mean()))
    }

    /// Serializes the manager's mutable state: strikes and quarantines
    /// per domain (ordered), the failure cursor, counters, and the
    /// recovery/MTBF instruments. The config is structural and not
    /// written.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        w.put_usize(self.strikes.len());
        for (&d, &s) in &self.strikes {
            put_domain(w, d);
            w.put_u32(s);
        }
        w.put_usize(self.quarantined.len());
        for &d in &self.quarantined {
            put_domain(w, d);
        }
        w.put_opt_time(self.last_failure);
        self.failures.snapshot(w);
        self.retries.snapshot(w);
        self.fallbacks.snapshot(w);
        self.repairs.snapshot(w);
        self.quarantines.snapshot(w);
        self.lost.snapshot(w);
        self.recovery_ns.snapshot(w);
        self.mtbf_ns.snapshot(w);
    }

    /// Overlays state captured by
    /// [`ResilienceManager::snapshot_state`] onto this manager, which
    /// must carry the same config.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncated or unsorted data or
    /// an unknown domain tag.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "manager claims {n} striked domains but only {} bytes remain",
                r.remaining()
            )));
        }
        self.strikes.clear();
        let mut prev: Option<Domain> = None;
        for i in 0..n {
            let d = get_domain(r)?;
            if prev.is_some_and(|p| p >= d) {
                return Err(malformed(format!("strike map unsorted at index {i}")));
            }
            prev = Some(d);
            let s = r.get_u32()?;
            self.strikes.insert(d, s);
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "manager claims {n} quarantined domains but only {} bytes remain",
                r.remaining()
            )));
        }
        self.quarantined.clear();
        let mut prev: Option<Domain> = None;
        for i in 0..n {
            let d = get_domain(r)?;
            if prev.is_some_and(|p| p >= d) {
                return Err(malformed(format!("quarantine set unsorted at index {i}")));
            }
            prev = Some(d);
            self.quarantined.insert(d);
        }
        self.last_failure = r.get_opt_time()?;
        self.failures = Counter::restore(r)?;
        self.retries = Counter::restore(r)?;
        self.fallbacks = Counter::restore(r)?;
        self.repairs = Counter::restore(r)?;
        self.quarantines = Counter::restore(r)?;
        self.lost = Counter::restore(r)?;
        self.recovery_ns = Histogram::restore(r)?;
        self.mtbf_ns = OnlineStats::restore(r)?;
        Ok(())
    }

    /// Folds the fault/recovery instruments into `m` under `prefix`:
    /// failure/retry/fallback/repair/quarantine/lost counters, the
    /// observed MTBF stats, and the recovery-latency histogram.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.add(&format!("{prefix}.failures"), self.failures.get());
        m.add(&format!("{prefix}.retries"), self.retries.get());
        m.add(&format!("{prefix}.fallbacks"), self.fallbacks.get());
        m.add(&format!("{prefix}.repairs"), self.repairs.get());
        m.add(&format!("{prefix}.quarantines"), self.quarantines.get());
        m.add(&format!("{prefix}.lost"), self.lost.get());
        m.merge_stats(&format!("{prefix}.mtbf_ns"), &self.mtbf_ns);
        m.merge_hist(&format!("{prefix}.recovery_ns"), &self.recovery_ns);
    }
}

/// Stable tagged encoding of a [`Domain`] for snapshots.
fn put_domain(w: &mut ecoscale_sim::SnapWriter, d: Domain) {
    match d {
        Domain::Worker(i) => {
            w.put_u8(0);
            w.put_usize(i);
        }
        Domain::Module(m) => {
            w.put_u8(1);
            w.put_u32(m);
        }
        Domain::Link(l) => {
            w.put_u8(2);
            w.put_u64(l);
        }
    }
}

fn get_domain(r: &mut ecoscale_sim::SnapReader<'_>) -> Result<Domain, ecoscale_sim::RestoreError> {
    match r.get_u8()? {
        0 => Ok(Domain::Worker(r.get_usize()?)),
        1 => Ok(Domain::Module(r.get_u32()?)),
        2 => Ok(Domain::Link(r.get_u64()?)),
        other => Err(ecoscale_sim::snap::malformed(format!(
            "unknown domain tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_matches_historical_sched_ladder() {
        // sched.rs used: backoff = (backoff + 1).min(3);
        //                wait = probe * (4 << backoff)
        let probe = Duration::from_ns(300);
        let policy = RetryPolicy::new(probe * 8, probe * 32, RetryPolicy::UNBOUNDED);
        let mut legacy_backoff = 0u32;
        for attempt in 1..=10 {
            legacy_backoff = (legacy_backoff + 1).min(3);
            let legacy_wait = probe * (4u64 << legacy_backoff);
            assert_eq!(policy.delay(attempt), legacy_wait, "attempt {attempt}");
        }
    }

    #[test]
    fn delay_saturates_without_overflow() {
        let policy = RetryPolicy::new(
            Duration::from_ns(1),
            Duration::from_ms(1),
            RetryPolicy::UNBOUNDED,
        );
        assert_eq!(policy.delay(200), Duration::from_ms(1));
    }

    #[test]
    fn backoff_exhausts_at_budget() {
        let policy = RetryPolicy::new(Duration::from_us(1), Duration::from_us(8), 4);
        let mut b = Backoff::new();
        let delays: Vec<_> = std::iter::from_fn(|| b.next(&policy)).collect();
        assert_eq!(
            delays,
            vec![
                Duration::from_us(1),
                Duration::from_us(2),
                Duration::from_us(4),
                Duration::from_us(8),
            ]
        );
        assert_eq!(b.attempts(), 4);
    }

    #[test]
    fn quarantine_after_strikes_fires_once() {
        let mut mgr = ResilienceManager::new(ResilienceConfig {
            quarantine_after: 3,
            ..ResilienceConfig::none()
        });
        let w = Domain::Worker(2);
        assert!(!mgr.record_failure(w, Time::from_us(1)));
        assert!(!mgr.record_failure(w, Time::from_us(2)));
        assert!(mgr.record_failure(w, Time::from_us(3)));
        assert!(mgr.is_quarantined(w));
        // already quarantined: no second trigger
        assert!(!mgr.record_failure(w, Time::from_us(4)));
        assert_eq!(mgr.quarantines(), 1);
        assert_eq!(mgr.failures(), 4);
        assert!(!mgr.is_quarantined(Domain::Worker(3)));
    }

    #[test]
    fn quarantine_disabled_when_zero() {
        let mut mgr = ResilienceManager::new(ResilienceConfig::none());
        let m = Domain::Module(7);
        for i in 0..100 {
            mgr.record_failure(m, Time::from_us(i));
        }
        assert!(!mgr.is_quarantined(m));
        assert_eq!(mgr.quarantines(), 0);
    }

    #[test]
    fn mtbf_tracks_inter_failure_gaps() {
        let mut mgr = ResilienceManager::new(ResilienceConfig::none());
        mgr.record_failure(Domain::Link(1), Time::from_us(10));
        mgr.record_failure(Domain::Link(2), Time::from_us(30));
        mgr.record_failure(Domain::Link(1), Time::from_us(50));
        let mtbf = mgr.mtbf().expect("two gaps recorded");
        assert_eq!(mtbf, Duration::from_us(20));
    }

    #[test]
    fn clear_strikes_resets_count_but_not_quarantine() {
        let mut mgr = ResilienceManager::new(ResilienceConfig {
            quarantine_after: 2,
            ..ResilienceConfig::none()
        });
        let w = Domain::Worker(0);
        mgr.record_failure(w, Time::from_us(1));
        mgr.clear_strikes(w);
        assert_eq!(mgr.strikes(w), 0);
        assert!(!mgr.record_failure(w, Time::from_us(2)));
        assert!(mgr.record_failure(w, Time::from_us(3)));
        mgr.clear_strikes(w);
        assert!(mgr.is_quarantined(w), "quarantine is sticky");
    }

    #[test]
    fn export_metrics_has_all_instruments() {
        let mut mgr = ResilienceManager::new(ResilienceConfig::full());
        mgr.record_failure(Domain::Worker(1), Time::from_us(5));
        mgr.note_retry();
        mgr.note_fallback();
        mgr.note_repair(Duration::from_us(12));
        mgr.note_lost();
        let mut m = MetricsRegistry::new();
        mgr.export_metrics(&mut m, "resilience");
        assert_eq!(m.counter("resilience.failures"), Some(1));
        assert_eq!(m.counter("resilience.retries"), Some(1));
        assert_eq!(m.counter("resilience.fallbacks"), Some(1));
        assert_eq!(m.counter("resilience.repairs"), Some(1));
        assert_eq!(m.counter("resilience.lost"), Some(1));
        assert!(m.get("resilience.recovery_ns").is_some());
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let cfg = ResilienceConfig {
            quarantine_after: 2,
            ..ResilienceConfig::full()
        };
        let mut mgr = ResilienceManager::new(cfg);
        mgr.record_failure(Domain::Worker(1), Time::from_us(10));
        mgr.record_failure(Domain::Worker(1), Time::from_us(20));
        mgr.record_failure(Domain::Module(7), Time::from_us(30));
        mgr.record_failure(Domain::Link(9), Time::from_us(40));
        mgr.note_retry();
        mgr.note_fallback();
        mgr.note_repair(Duration::from_us(12));
        mgr.note_lost();
        let mut w = ecoscale_sim::SnapWriter::new();
        mgr.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = ResilienceManager::new(cfg);
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(
            bytes,
            w2.into_bytes(),
            "restored manager re-serializes differently"
        );
        assert!(fresh.is_quarantined(Domain::Worker(1)));
        assert_eq!(fresh.failures(), mgr.failures());
        assert_eq!(fresh.mtbf(), mgr.mtbf());
        // continuation equivalence: the next strike trips quarantine in both
        assert_eq!(
            fresh.record_failure(Domain::Module(7), Time::from_us(50)),
            mgr.record_failure(Domain::Module(7), Time::from_us(50)),
        );

        for cut in 0..bytes.len() {
            let mut p = ResilienceManager::new(cfg);
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                p.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }
}
