//! Fork/join task graphs.
//!
//! §4.1: "Each Worker is an independent computing unit that can execute,
//! fork, and join tasks or threads of an HPC application in parallel
//! with the other Workers." A [`TaskGraph`] is a DAG of [`Task`]s with
//! dependency edges; [`GraphRun`] executes it over a worker pool with
//! locality-aware placement (tasks prefer their data home) and reports
//! makespan, critical path, and per-worker utilization.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use ecoscale_sim::{Duration, EventQueue, Time};

use crate::device::CpuModel;
use crate::task::{Task, TaskId};

/// A dependency-ordered collection of tasks.
///
/// # Example
///
/// ```
/// use ecoscale_noc::NodeId;
/// use ecoscale_runtime::graph::TaskGraph;
/// use ecoscale_runtime::{Task, TaskId};
///
/// let mut g = TaskGraph::new();
/// let a = g.add(Task::new(TaskId(0), "fork", vec![], 1000, 100, NodeId(0)));
/// let b = g.add(Task::new(TaskId(1), "work", vec![], 9000, 100, NodeId(1)));
/// let c = g.add(Task::new(TaskId(2), "join", vec![], 1000, 100, NodeId(0)));
/// g.depend(b, a)?; // b after a
/// g.depend(c, b)?;
/// assert_eq!(g.len(), 3);
/// # Ok::<(), ecoscale_runtime::graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// deps[i] = indices task i waits for
    deps: Vec<Vec<usize>>,
}

/// Handle to a node in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeHandle(usize);

/// Task-graph construction/execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A handle referenced a node not in this graph.
    BadHandle,
    /// The dependency edges form a cycle.
    Cycle,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadHandle => f.write_str("handle does not belong to this graph"),
            GraphError::Cycle => f.write_str("dependency edges form a cycle"),
        }
    }
}

impl Error for GraphError {}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Adds a task, returning its handle.
    pub fn add(&mut self, task: Task) -> NodeHandle {
        self.tasks.push(task);
        self.deps.push(Vec::new());
        NodeHandle(self.tasks.len() - 1)
    }

    /// Declares that `after` must wait for `before`.
    ///
    /// # Errors
    ///
    /// [`GraphError::BadHandle`] for foreign handles.
    pub fn depend(&mut self, after: NodeHandle, before: NodeHandle) -> Result<(), GraphError> {
        if after.0 >= self.tasks.len() || before.0 >= self.tasks.len() {
            return Err(GraphError::BadHandle);
        }
        self.deps[after.0].push(before.0);
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Builds a fork/join fan of `width` parallel tasks between a fork
    /// and a join node — the canonical pattern the paper names.
    pub fn fork_join(width: usize, flops: u64, homes: usize) -> TaskGraph {
        use ecoscale_noc::NodeId;
        let mut g = TaskGraph::new();
        let fork = g.add(Task::new(TaskId(0), "fork", vec![], 1_000, 100, NodeId(0)));
        let mut mids = Vec::new();
        for i in 0..width {
            let t = g.add(Task::new(
                TaskId(1 + i as u64),
                "work",
                vec![flops as f64],
                flops,
                flops / 10,
                NodeId(i % homes.max(1)),
            ));
            g.depend(t, fork).expect("fresh handles");
            mids.push(t);
        }
        let join = g.add(Task::new(
            TaskId(1 + width as u64),
            "join",
            vec![],
            1_000,
            100,
            NodeId(0),
        ));
        for m in mids {
            g.depend(join, m).expect("fresh handles");
        }
        g
    }

    /// Topological order, or a cycle error.
    fn topo_order(&self) -> Result<Vec<usize>, GraphError> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ds) in self.deps.iter().enumerate() {
            indeg[i] += ds.len();
            for &d in ds {
                out[d].push(i);
            }
        }
        let mut ready: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop_front() {
            order.push(i);
            for &s in &out[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push_back(s);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }

    /// Critical-path length (sum of task times along the longest
    /// dependency chain) for `cpu` — the lower bound on makespan with
    /// unlimited workers.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] for cyclic graphs.
    pub fn critical_path(&self, cpu: &CpuModel) -> Result<Duration, GraphError> {
        let order = self.topo_order()?;
        let mut finish = vec![Duration::ZERO; self.tasks.len()];
        for &i in &order {
            let start = self.deps[i]
                .iter()
                .map(|&d| finish[d])
                .max()
                .unwrap_or(Duration::ZERO);
            let (t, _) = cpu.exec(self.tasks[i].flops(), self.tasks[i].mem_ops());
            finish[i] = start + t;
        }
        Ok(finish.into_iter().max().unwrap_or(Duration::ZERO))
    }

    /// Executes the graph on `workers` workers (locality-first greedy
    /// list scheduling): a ready task runs on its data-home worker if
    /// idle, else on the earliest-free worker.
    ///
    /// # Errors
    ///
    /// [`GraphError::Cycle`] for cyclic graphs.
    pub fn execute(&self, workers: usize, cpu: &CpuModel) -> Result<GraphRun, GraphError> {
        assert!(workers > 0, "need at least one worker");
        let order = self.topo_order()?; // validates acyclicity
        let _ = order;
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = self.deps.iter().map(|d| d.len()).collect();
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ds) in self.deps.iter().enumerate() {
            for &d in ds {
                out[d].push(i);
            }
        }
        let mut worker_free = vec![Time::ZERO; workers];
        let mut busy_time = vec![Duration::ZERO; workers];
        let mut finish_at = vec![Time::ZERO; n];
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut completed = 0usize;

        // Greedy dispatch helper.
        let dispatch = |i: usize,
                        now: Time,
                        worker_free: &mut [Time],
                        busy_time: &mut [Duration],
                        q: &mut EventQueue<usize>,
                        finish_at: &mut [Time]| {
            let dep_ready = self.deps[i]
                .iter()
                .map(|&d| finish_at[d])
                .max()
                .unwrap_or(Time::ZERO)
                .max(now);
            let home = self.tasks[i].data_home().0 % worker_free.len();
            // locality-first: home worker unless another is free much
            // earlier
            let best = (0..worker_free.len())
                .min_by_key(|&w| worker_free[w])
                .expect("workers > 0");
            let w = if worker_free[home] <= worker_free[best] + Duration::from_us(5) {
                home
            } else {
                best
            };
            let start = worker_free[w].max(dep_ready);
            let (t, _) = cpu.exec(self.tasks[i].flops(), self.tasks[i].mem_ops());
            worker_free[w] = start + t;
            busy_time[w] += t;
            finish_at[i] = start + t;
            q.schedule(start + t, i);
        };

        for i in ready.drain(..) {
            dispatch(
                i,
                Time::ZERO,
                &mut worker_free,
                &mut busy_time,
                &mut q,
                &mut finish_at,
            );
        }
        while let Some((now, i)) = q.pop() {
            completed += 1;
            for &s in &out[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    dispatch(
                        s,
                        now,
                        &mut worker_free,
                        &mut busy_time,
                        &mut q,
                        &mut finish_at,
                    );
                }
            }
        }
        debug_assert_eq!(completed, n);
        let makespan = finish_at.iter().copied().max().unwrap_or(Time::ZERO);
        let span = makespan.saturating_since(Time::ZERO);
        let utils: Vec<f64> = busy_time
            .iter()
            .map(|b| if span.is_zero() { 0.0 } else { *b / span })
            .collect();
        Ok(GraphRun {
            makespan: span,
            mean_utilization: utils.iter().sum::<f64>() / utils.len() as f64,
            tasks: n,
        })
    }
}

/// What one graph execution produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphRun {
    /// End-to-end time.
    pub makespan: Duration,
    /// Mean worker busy fraction.
    pub mean_utilization: f64,
    /// Tasks executed.
    pub tasks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_noc::NodeId;

    fn cpu() -> CpuModel {
        CpuModel::a53_default()
    }

    fn task(id: u64, flops: u64, home: usize) -> Task {
        Task::new(TaskId(id), "t", vec![], flops, flops / 10, NodeId(home))
    }

    #[test]
    fn chain_runs_serially() {
        let mut g = TaskGraph::new();
        let a = g.add(task(0, 100_000, 0));
        let b = g.add(task(1, 100_000, 1));
        let c = g.add(task(2, 100_000, 2));
        g.depend(b, a).unwrap();
        g.depend(c, b).unwrap();
        let run = g.execute(8, &cpu()).unwrap();
        let cp = g.critical_path(&cpu()).unwrap();
        // a chain's makespan equals its critical path regardless of
        // worker count
        assert_eq!(run.makespan, cp);
        assert_eq!(run.tasks, 3);
    }

    #[test]
    fn fork_join_scales_with_workers() {
        let g = TaskGraph::fork_join(32, 500_000, 8);
        let one = g.execute(1, &cpu()).unwrap();
        let eight = g.execute(8, &cpu()).unwrap();
        assert!(eight.makespan.as_ns() * 5 < one.makespan.as_ns());
        // lower-bounded by the critical path
        let cp = g.critical_path(&cpu()).unwrap();
        assert!(eight.makespan >= cp);
    }

    #[test]
    fn unlimited_workers_hit_critical_path() {
        let g = TaskGraph::fork_join(16, 200_000, 16);
        let run = g.execute(64, &cpu()).unwrap();
        let cp = g.critical_path(&cpu()).unwrap();
        // fork + one mid + join; with ≥width workers makespan == cp
        assert_eq!(run.makespan, cp);
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        let a = g.add(task(0, 100, 0));
        let b = g.add(task(1, 100, 0));
        g.depend(a, b).unwrap();
        g.depend(b, a).unwrap();
        assert_eq!(g.execute(2, &cpu()).unwrap_err(), GraphError::Cycle);
        assert_eq!(g.critical_path(&cpu()).unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn bad_handle_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add(task(0, 100, 0));
        let foreign = NodeHandle(7);
        assert_eq!(g.depend(a, foreign), Err(GraphError::BadHandle));
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        let run = g.execute(4, &cpu()).unwrap();
        assert_eq!(run.makespan, Duration::ZERO);
        assert_eq!(run.tasks, 0);
    }

    #[test]
    fn independent_tasks_spread_over_workers() {
        let mut g = TaskGraph::new();
        for i in 0..16 {
            g.add(task(i, 1_000_000, i as usize));
        }
        let run = g.execute(16, &cpu()).unwrap();
        assert!(run.mean_utilization > 0.9);
    }
}
