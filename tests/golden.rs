//! Golden-snapshot tests pinning the JSON *schemas* of the three export
//! surfaces — [`SystemReport::to_json`], the metrics registry and the
//! Chrome-trace exporter — against files under `tests/golden/`.
//!
//! The schema of a document is the sorted set of `path: kind` lines over
//! every value it contains (arrays contribute the union of their elements
//! under `path[]`), so adding, removing, renaming or re-typing any field —
//! including any metric key — fails the test, while changing numeric
//! values does not.
//!
//! Regenerate after an intentional schema change with
//! `scripts/ci.sh --bless` (sets `ECOSCALE_BLESS=1`).

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use ecoscale::bench::obs::{capture_observability, capture_profile};
use ecoscale::bench::Scale;
use ecoscale::core::{SystemBuilder, SystemReport};
use ecoscale::hls::KernelArgs;
use ecoscale::noc::NodeId;
use ecoscale::sim::json::{parse, Value};

/// Recursively collects `path: kind` lines for `v`.
fn collect_schema(v: &Value, path: &str, out: &mut BTreeSet<String>) {
    match v {
        Value::Null => {
            out.insert(format!("{path}: null"));
        }
        Value::Bool(_) => {
            out.insert(format!("{path}: bool"));
        }
        Value::Num(_) => {
            out.insert(format!("{path}: num"));
        }
        Value::Str(_) => {
            out.insert(format!("{path}: str"));
        }
        Value::Arr(items) => {
            out.insert(format!("{path}: arr"));
            for item in items {
                collect_schema(item, &format!("{path}[]"), out);
            }
        }
        Value::Obj(fields) => {
            out.insert(format!("{path}: obj"));
            for (key, val) in fields {
                collect_schema(val, &format!("{path}.{key}"), out);
            }
        }
    }
}

/// Renders the schema of a JSON document, one sorted line per path.
fn schema_of(json: &str) -> String {
    let v = parse(json).expect("document parses as JSON");
    let mut out = BTreeSet::new();
    collect_schema(&v, "$", &mut out);
    let mut s: String = out.into_iter().collect::<Vec<_>>().join("\n");
    s.push('\n');
    s
}

/// Compares `actual` against `tests/golden/<name>`, or rewrites the file
/// when `ECOSCALE_BLESS=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var("ECOSCALE_BLESS").is_ok_and(|v| v == "1") {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run scripts/ci.sh --bless",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "schema drift against {}; if intentional, run scripts/ci.sh --bless",
        path.display()
    );
}

const K: &str = "kernel hot(in float a[], out float b[], int n) {
    for (i in 0 .. n) { b[i] = sqrt(a[i] + 1.0) * exp(a[i] / 100.0); }
}";

fn args(n: usize) -> KernelArgs {
    let mut a = KernelArgs::new();
    a.bind_array("a", (0..n).map(|i| i as f64).collect())
        .bind_array("b", vec![0.0; n])
        .bind_scalar("n", n as f64);
    a
}

#[test]
fn system_report_json_schema_is_pinned() {
    let mut s = SystemBuilder::new()
        .workers_per_node(2)
        .compute_nodes(2)
        .kernel(K, HashMap::from([("n".to_owned(), 4096.0)]))
        .build()
        .unwrap();
    for _ in 0..12 {
        let mut a = args(4096);
        s.call(NodeId(0), "hot", &mut a).unwrap();
    }
    s.daemon_tick();
    let mut a = args(4096);
    s.call(NodeId(0), "hot", &mut a).unwrap();
    let report = SystemReport::capture(&s);
    assert_golden("system_report.schema", &schema_of(&report.to_json()));
}

/// The populated `SystemReport` profile section: same workload as the
/// plain system-report schema test, but with a tracer installed so the
/// ProfPlane critical-path extraction has spans to analyse.
#[test]
fn system_report_profile_section_schema_is_pinned() {
    let tracer = ecoscale::sim::Tracer::buffering();
    let mut s = SystemBuilder::new()
        .workers_per_node(2)
        .compute_nodes(2)
        .kernel(K, HashMap::from([("n".to_owned(), 4096.0)]))
        .build()
        .unwrap();
    s.set_tracer(&tracer);
    for _ in 0..12 {
        let mut a = args(4096);
        s.call(NodeId(0), "hot", &mut a).unwrap();
    }
    s.daemon_tick();
    let report = SystemReport::capture(&s);
    let profile = report.profile.expect("tracer installed");
    assert_golden(
        "system_report_profile.schema",
        &schema_of(&profile.to_json()),
    );
}

/// The `exp_all --profile` document: critical-path blame over the
/// five-phase capture plus the shard-occupancy bands, assembled exactly
/// as the binary writes it.
#[test]
fn profile_export_json_schema_is_pinned() {
    let pc = capture_profile(Scale::Quick);
    let report = ecoscale::sim::prof::critical_path(&pc.capture.trace);
    let doc = format!(
        "{{\"profile\":{},\"occupancy\":{}}}",
        report.to_json(),
        pc.occupancy.to_json()
    );
    assert_golden("profile.schema", &schema_of(&doc));
}

/// The `serving` section of a drained ServePlane run — per-tenant SLO
/// ledger plus the aggregate counters — as exported by
/// `exp_all --serve-out` and embedded in `SystemReport::to_json`.
#[test]
fn serving_report_json_schema_is_pinned() {
    use ecoscale::apps::mix::serve_mix;
    use ecoscale::core::{run_serve_sim, ServeSimConfig};
    use ecoscale::runtime::ServeSpec;
    let spec = ServeSpec::parse("seed=7,tenants=2,rate=120000,horizon=300us,batch=4")
        .expect("spec parses");
    let mut cfg = ServeSimConfig::new(spec, serve_mix());
    cfg.items = 32;
    let out = run_serve_sim(&cfg);
    assert!(out.serving.conserved());
    assert_golden("serving_report.schema", &schema_of(&out.serving.to_json()));
}

#[test]
fn metrics_export_json_schema_is_pinned() {
    let cap = capture_observability(Scale::Quick);
    assert_golden("metrics.schema", &schema_of(&cap.metrics.to_json()));
}

#[test]
fn chrome_trace_json_schema_is_pinned() {
    let cap = capture_observability(Scale::Quick);
    assert_golden(
        "chrome_trace.schema",
        &schema_of(&cap.trace.to_chrome_json()),
    );
}

/// The `exp_all --telemetry` document — the merged serving window
/// series, the per-cell flight recorders (forced to fire so the trigger
/// and event fields are populated), and the sharded engine's
/// per-safe-window series. Pins every series/flight field name and type.
#[test]
fn telemetry_json_schema_is_pinned() {
    use ecoscale::bench::obs::{telemetry_shard_series, TelemetryCapture};
    use ecoscale::core::{linear_test_mix, run_serve_sim, ServeSimConfig};
    use ecoscale::runtime::ServeSpec;
    use ecoscale::sim::{CampaignSpec, Duration, TelemetryConfig};
    // an unmeetable 1µs deadline guarantees a populated flight recorder
    let spec = ServeSpec::parse("seed=21,tenants=4,rate=100000,horizon=500us,batch=4,deadline=1us")
        .expect("spec parses");
    let mut cfg = ServeSimConfig::new(spec, linear_test_mix());
    cfg.items = 32;
    cfg.cells = 2;
    cfg.faults = CampaignSpec::parse("seed=5,seu=200us,smmu=0.002,scrub=400us")
        .expect("campaign spec parses");
    cfg.telemetry = Some(TelemetryConfig::new(Duration::from_us(50)));
    let out = run_serve_sim(&cfg);
    let cap = TelemetryCapture {
        serve: out.telemetry.expect("telemetry armed"),
        shard: telemetry_shard_series(Scale::Quick),
    };
    assert!(cap.fired(), "breach spec must populate the flight ring");
    assert_golden("telemetry.schema", &schema_of(&cap.to_json()));
    assert_golden("flight_dump.schema", &schema_of(&cap.flight_dump_json()));
}

/// The SnapPlane snapshot header — magic, version, and the checksummed
/// section table — as rendered by [`SnapshotFile::header_json`] for a
/// two-cell serving checkpoint. Pins the on-disk container layout:
/// adding, renaming or re-typing a header field fails the test.
///
/// [`SnapshotFile::header_json`]: ecoscale::sim::snap::SnapshotFile::header_json
#[test]
fn snapshot_header_json_schema_is_pinned() {
    use ecoscale::core::{linear_test_mix, serve_checkpoint, ServeSimConfig};
    use ecoscale::runtime::ServeSpec;
    use ecoscale::sim::snap::SnapshotFile;
    use ecoscale::sim::{Duration, Time};
    let spec = ServeSpec::parse("seed=7,tenants=2,rate=120000,horizon=300us,batch=4")
        .expect("spec parses");
    let mut cfg = ServeSimConfig::new(spec, linear_test_mix());
    cfg.items = 24;
    cfg.cells = 2;
    let bytes = serve_checkpoint(&cfg, Time::ZERO + Duration::from_us(150));
    let file = SnapshotFile::parse(&bytes).expect("checkpoint parses");
    assert_golden("snapshot_header.schema", &schema_of(&file.header_json()));
}
