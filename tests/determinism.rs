//! Determinism regression tests for the parallel experiment harness.
//!
//! The contract in `ecoscale_sim::pool` is that results come back in
//! input order regardless of the pool width, so a rendered experiment
//! table must be byte-identical run-to-run and across thread counts.
//!
//! `ECOSCALE_THREADS` is process-global, so the cross-thread-count test
//! sets and restores it while holding a lock shared with nothing else in
//! this binary (each integration test file is its own process, which
//! keeps the env mutation contained).

use std::sync::Mutex;

use ecoscale::apps::mix::serve_mix;
use ecoscale::bench::fuzz::FuzzConfig;
use ecoscale::bench::{arch, obs, Scale};
use ecoscale::core::{
    run_serve_sim, run_shard_sim, run_shard_sim_with, ServeSimConfig, ShardOutcome, ShardSimConfig,
};
use ecoscale::runtime::ServeSpec;
use ecoscale::sim::check::CheckPlane;
use ecoscale::sim::pool::THREADS_ENV;
use ecoscale::sim::shard::SHARDS_ENV;
use ecoscale::sim::CampaignSpec;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let prev = std::env::var(THREADS_ENV).ok();
    std::env::set_var(THREADS_ENV, threads);
    let out = f();
    match prev {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    out
}

fn render_with_threads(threads: &str) -> String {
    with_threads(threads, || arch::e01_hierarchy(Scale::Quick).to_string())
}

#[test]
fn repeated_runs_render_identically() {
    let a = arch::e01_hierarchy(Scale::Quick).to_string();
    let b = arch::e01_hierarchy(Scale::Quick).to_string();
    assert_eq!(a, b, "same-process reruns must be byte-identical");
}

#[test]
fn output_is_independent_of_thread_count() {
    let sequential = render_with_threads("1");
    let parallel = render_with_threads("4");
    assert_eq!(
        sequential, parallel,
        "ECOSCALE_THREADS=1 and =4 must render byte-identical tables"
    );
}

/// The observability capture fans its scheduler lanes out on the pool and
/// merges per-lane tracers and registries in input order, so both exports
/// must be byte-identical at any pool width.
#[test]
fn observability_exports_are_independent_of_thread_count() {
    let capture = |threads| {
        with_threads(threads, || {
            let cap = obs::capture_observability(Scale::Quick);
            (cap.trace.to_chrome_json(), cap.metrics.to_json())
        })
    };
    let (trace_seq, metrics_seq) = capture("1");
    let (trace_par, metrics_par) = capture("8");
    assert_eq!(
        trace_seq, trace_par,
        "trace JSON must be byte-identical at ECOSCALE_THREADS=1 vs =8"
    );
    assert_eq!(
        metrics_seq, metrics_par,
        "metrics JSON must be byte-identical at ECOSCALE_THREADS=1 vs =8"
    );
}

/// A seeded fault campaign is part of the deterministic state: the
/// faulted capture (worker crashes/stalls, SEU scrub/repair, SMMU/NoC
/// injection under recovery) must export byte-identical metrics and
/// trace JSON at any pool width.
#[test]
fn fault_campaign_exports_are_independent_of_thread_count() {
    let spec = CampaignSpec::parse("seed=3,crash=1ms,seu=400us,scrub=800us,smmu=1e-3,corrupt=1e-3")
        .expect("campaign spec parses");
    let capture = |threads| {
        with_threads(threads, || {
            let cap = obs::capture_fault_campaign(Scale::Quick, &spec);
            (cap.trace.to_chrome_json(), cap.metrics.to_json())
        })
    };
    let (trace_seq, metrics_seq) = capture("1");
    let (trace_par, metrics_par) = capture("8");
    assert_eq!(
        trace_seq, trace_par,
        "faulted trace JSON must be byte-identical at ECOSCALE_THREADS=1 vs =8"
    );
    assert_eq!(
        metrics_seq, metrics_par,
        "faulted metrics JSON must be byte-identical at ECOSCALE_THREADS=1 vs =8"
    );
}

fn with_shards<T>(shards: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let prev = std::env::var(SHARDS_ENV).ok();
    std::env::set_var(SHARDS_ENV, shards);
    let out = f();
    match prev {
        Some(v) => std::env::set_var(SHARDS_ENV, v),
        None => std::env::remove_var(SHARDS_ENV),
    }
    out
}

fn shard_exports(out: &ShardOutcome) -> (String, String, String) {
    (
        out.metrics.to_json(),
        out.trace.to_chrome_json(),
        out.report(),
    )
}

/// The sharded conservative-parallel engine promises byte-identical
/// results at any `ECOSCALE_SHARDS` setting: metrics, trace, and report
/// exports of the cluster-partitioned simulation must match exactly
/// between the sequential run and a 4-shard run.
#[test]
fn shard_sim_exports_are_independent_of_shard_count() {
    let mut cfg = ShardSimConfig::new(6, 4);
    cfg.tasks_per_cluster = 96;
    let capture = |shards| with_shards(shards, || shard_exports(&run_shard_sim(&cfg)));
    let sequential = capture("1");
    let parallel = capture("4");
    assert_eq!(
        sequential, parallel,
        "shard-sim exports must be byte-identical at ECOSCALE_SHARDS=1 vs =4"
    );
}

/// The ProfPlane export behind `exp_all --profile` — critical-path
/// blame over the merged capture plus the shard-occupancy bands — is a
/// pure function of the seeded workload: occupancy is event-count
/// accounting, not wall clock, so the rendered JSON must be
/// byte-identical at any `ECOSCALE_SHARDS` setting.
#[test]
fn profile_export_is_independent_of_shard_count() {
    let render = |shards| {
        with_shards(shards, || {
            let pc = obs::capture_profile(Scale::Quick);
            let report = ecoscale::sim::prof::critical_path(&pc.capture.trace);
            format!(
                "{{\"profile\":{},\"occupancy\":{}}}",
                report.to_json(),
                pc.occupancy.to_json()
            )
        })
    };
    let sequential = render("1");
    let sharded = render("4");
    assert_eq!(
        sequential, sharded,
        "profile export must be byte-identical at ECOSCALE_SHARDS=1 vs =4"
    );
}

fn serve_cfg() -> ServeSimConfig {
    let spec = ServeSpec::parse(
        "seed=19,tenants=4,rate=200000,horizon=400us,batch=6,deadline=250us,queue=24",
    )
    .expect("spec parses");
    let mut cfg = ServeSimConfig::new(spec, serve_mix());
    cfg.items = 32;
    cfg.cells = 2;
    cfg
}

fn serve_exports(cfg: &ServeSimConfig) -> (String, String) {
    let out = run_serve_sim(cfg);
    (out.serving.to_json(), out.metrics.to_json())
}

/// ServePlane runs partition tenants over serving cells fanned out on
/// the pool; the merged serving report and metrics must be
/// byte-identical at any pool width.
#[test]
fn serving_exports_are_independent_of_thread_count() {
    let cfg = serve_cfg();
    let sequential = with_threads("1", || serve_exports(&cfg));
    let parallel = with_threads("8", || serve_exports(&cfg));
    assert_eq!(
        sequential, parallel,
        "serving exports must be byte-identical at ECOSCALE_THREADS=1 vs =8"
    );
}

/// A faulted serving run (SEU + SMMU campaign through the resilience
/// layer) is part of the same deterministic state — and serving never
/// touches the sharded engine, so `ECOSCALE_SHARDS` must not perturb it
/// either.
#[test]
fn serving_exports_are_independent_of_shard_count() {
    let mut cfg = serve_cfg();
    cfg.faults = CampaignSpec::parse("seed=5,seu=200us,smmu=0.002,scrub=400us")
        .expect("campaign spec parses");
    let sequential = with_shards("1", || serve_exports(&cfg));
    let sharded = with_shards("4", || serve_exports(&cfg));
    assert_eq!(
        sequential, sharded,
        "faulted serving exports must be byte-identical at ECOSCALE_SHARDS=1 vs =4"
    );
}

/// Sixteen fuzzed configurations (varying cluster counts, cluster widths,
/// workloads, and seeds drawn from the deterministic fuzz sweep), each
/// compared byte-for-byte between 1 and 4 shards.
#[test]
fn fuzzed_shard_sims_are_byte_identical_at_four_shards() {
    for i in 0..16 {
        let fz = FuzzConfig::from_index(i);
        let mut cfg = ShardSimConfig::new(2 + fz.workers % 5, 2 + fz.workers % 3);
        cfg.tasks_per_cluster = fz.tasks.clamp(8, 48);
        cfg.flops = 400;
        cfg.spacing_ns = 60;
        cfg.seed = fz.seed;
        let mut cp = CheckPlane::enabled(1);
        let seq = run_shard_sim_with(&cfg, Some(1), &mut cp);
        let par = run_shard_sim_with(&cfg, Some(4), &mut cp);
        assert!(cp.ok(), "config {i}: {:?}", cp.first());
        assert_eq!(
            shard_exports(&seq),
            shard_exports(&par),
            "fuzz config {i} ({fz}) diverged between shards=1 and =4"
        );
    }
}

fn telemetry_campaigns() -> Vec<(&'static str, CampaignSpec)> {
    vec![
        ("clean", CampaignSpec::off()),
        (
            "faulted",
            CampaignSpec::parse("seed=5,seu=200us,smmu=0.002,scrub=400us")
                .expect("campaign spec parses"),
        ),
    ]
}

/// The TelePlane capture behind `exp_all --telemetry` — the merged
/// serving window series, the per-cell flight recorders, and the sharded
/// engine's per-safe-window series — must export byte-identically at any
/// pool width, with and without a fault campaign injected into the
/// serving backend; the flight-dump evidence bundle rides along.
#[test]
fn telemetry_exports_are_independent_of_thread_count() {
    for (label, campaign) in telemetry_campaigns() {
        let capture = |threads| {
            with_threads(threads, || {
                let cap = obs::capture_telemetry(Scale::Quick, &campaign);
                (cap.to_json(), cap.flight_dump_json())
            })
        };
        assert_eq!(
            capture("1"),
            capture("8"),
            "{label} telemetry capture must be byte-identical at \
             ECOSCALE_THREADS=1 vs =8"
        );
    }
}

/// The shard half of the telemetry capture is fed by the sharded
/// engine's safe-window folds, so the whole export (and its flight dump)
/// must also be byte-identical at any `ECOSCALE_SHARDS` setting.
#[test]
fn telemetry_exports_are_independent_of_shard_count() {
    for (label, campaign) in telemetry_campaigns() {
        let capture = |shards| {
            with_shards(shards, || {
                let cap = obs::capture_telemetry(Scale::Quick, &campaign);
                (cap.to_json(), cap.flight_dump_json())
            })
        };
        assert_eq!(
            capture("1"),
            capture("4"),
            "{label} telemetry capture must be byte-identical at \
             ECOSCALE_SHARDS=1 vs =4"
        );
    }
}

/// The SnapPlane restore-equivalence oracle must hold at any pool or
/// shard width: checkpoint the faulted serving run mid-horizon under one
/// setting, resume it under another, and both the resumed exports and
/// the uninterrupted run's exports must be byte-identical across the
/// whole matrix.
#[test]
fn serve_resume_exports_are_independent_of_threads_and_shards() {
    use ecoscale::core::{serve_checkpoint, serve_resume};
    use ecoscale::sim::Duration;
    use ecoscale::sim::Time;

    let mut cfg = serve_cfg();
    cfg.faults = CampaignSpec::parse("seed=5,seu=200us,smmu=0.002,scrub=400us")
        .expect("campaign spec parses");
    let at = Time::ZERO + Duration::from_us(180);

    let uninterrupted = with_threads("1", || serve_exports(&cfg));
    let bytes = with_threads("1", || serve_checkpoint(&cfg, at));

    // The snapshot itself must not depend on the pool width.
    let bytes_par = with_threads("8", || serve_checkpoint(&cfg, at));
    assert_eq!(
        bytes, bytes_par,
        "serve snapshot bytes must be identical at ECOSCALE_THREADS=1 vs =8"
    );

    let resume_exports = |out: ecoscale::core::ServeOutcome| {
        assert_eq!(out.violations, 0, "resume must pass invariant checks");
        (out.serving.to_json(), out.metrics.to_json())
    };
    let resumed_seq = with_threads("1", || {
        resume_exports(serve_resume(&cfg, &bytes).expect("resume succeeds"))
    });
    let resumed_par = with_threads("8", || {
        resume_exports(serve_resume(&cfg, &bytes).expect("resume succeeds"))
    });
    let resumed_sharded = with_shards("4", || {
        resume_exports(serve_resume(&cfg, &bytes).expect("resume succeeds"))
    });
    assert_eq!(
        resumed_seq, uninterrupted,
        "resumed serving exports must match the uninterrupted run"
    );
    assert_eq!(
        resumed_par, uninterrupted,
        "resume at ECOSCALE_THREADS=8 must match the uninterrupted run"
    );
    assert_eq!(
        resumed_sharded, uninterrupted,
        "resume at ECOSCALE_SHARDS=4 must match the uninterrupted run"
    );
}
