//! End-to-end integration tests spanning every crate: a full system
//! built from application kernels, driven through the runtime, with
//! results checked against the pure-software references.

use ecoscale::apps::{blackscholes, gemm, montecarlo, stencil};
use ecoscale::core::SystemBuilder;
use ecoscale::fpga::Resources;
use ecoscale::noc::NodeId;
use ecoscale::runtime::DeviceClass;
use ecoscale::sim::{Energy, Time};

fn build_full_system() -> ecoscale::core::EcoscaleSystem {
    SystemBuilder::new()
        .workers_per_node(4)
        .compute_nodes(4)
        .hls_budget(Resources::new(3900, 64, 200))
        .kernel(blackscholes::KERNEL, blackscholes::kernel_hints(65_536))
        .kernel(montecarlo::KERNEL, montecarlo::kernel_hints(65_536))
        .kernel(gemm::KERNEL, gemm::kernel_hints(128))
        .kernel(stencil::KERNEL, stencil::kernel_hints(128))
        .build()
        .expect("system builds")
}

#[test]
fn full_system_builds_with_app_library() {
    let s = build_full_system();
    assert_eq!(s.num_workers(), 16);
    assert!(s.library().len() >= 3, "most kernels synthesize");
    assert!(s.library().get("blackscholes").is_some());
    assert_eq!(s.now(), Time::ZERO);
    assert_eq!(s.energy(), Energy::ZERO);
}

#[test]
fn blackscholes_results_identical_across_devices() {
    let mut s = build_full_system();
    let (spots, strikes) = blackscholes::generate(4096, 3);
    let reference = blackscholes::reference(&spots, &strikes, 0.02, 0.3, 1.0);

    // software runs
    let mut cpu_out = Vec::new();
    for _ in 0..3 {
        let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        let out = s.call(NodeId(0), "blackscholes", &mut args).expect("runs");
        assert_eq!(out.device, DeviceClass::Cpu);
        cpu_out = args.take_array("price").expect("bound");
    }
    // load hardware, run again
    s.load_module(NodeId(0), "blackscholes").expect("fits");
    let mut hw_out = Vec::new();
    for _ in 0..3 {
        let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        let out = s.call(NodeId(0), "blackscholes", &mut args).expect("runs");
        if out.device == DeviceClass::FpgaLocal {
            hw_out = args.take_array("price").expect("bound");
        }
    }
    assert!(!hw_out.is_empty(), "at least one call ran in hardware");
    assert_eq!(cpu_out, hw_out, "hardware results are bit-identical");
    for (got, want) in hw_out.iter().zip(&reference) {
        assert!((got - want).abs() < 1e-9);
    }
}

#[test]
fn daemon_accelerates_hot_function_and_speeds_up_calls() {
    let mut s = build_full_system();
    let (spots, strikes) = blackscholes::generate(16_384, 1);
    let mut first_latency = None;
    let mut last_latency = None;
    for i in 0..30 {
        let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        let out = s.call(NodeId(5), "blackscholes", &mut args).expect("runs");
        if i == 0 {
            first_latency = Some(out.latency);
        }
        last_latency = Some(out.latency);
        if i % 5 == 4 {
            s.daemon_tick();
        }
    }
    let first = first_latency.expect("ran");
    let last = last_latency.expect("ran");
    assert!(
        last.as_ns_f64() * 5.0 < first.as_ns_f64(),
        "hardware calls ({last}) should be >5x faster than the first software call ({first})"
    );
}

#[test]
fn multiple_kernels_coexist_on_one_fabric() {
    // a double-width fabric hosts two near-budget modules side by side
    let mut s = SystemBuilder::new()
        .workers_per_node(4)
        .compute_nodes(4)
        .fabric(160, 80)
        .hls_budget(Resources::new(3900, 64, 200))
        .kernel(gemm::KERNEL, gemm::kernel_hints(128))
        .kernel(stencil::KERNEL, stencil::kernel_hints(128))
        .build()
        .expect("system builds");
    let a = s.load_module(NodeId(0), "gemm");
    let b = s.load_module(NodeId(0), "jacobi2d");
    assert!(a.is_ok() && b.is_ok(), "both modules placed");
    let loaded = s.worker(NodeId(0)).loaded_modules();
    assert_eq!(loaded.len(), 2);
}

#[test]
fn gemm_through_system_matches_reference() {
    let mut s = build_full_system();
    let n = 32usize;
    let a = gemm::generate(n, 1);
    let b = gemm::generate(n, 2);
    let mut args = gemm::bind_args(&a, &b, n);
    s.call(NodeId(3), "gemm", &mut args).expect("runs");
    let reference = gemm::reference(&a, &b, n);
    for (got, want) in args.array("c").expect("bound").iter().zip(&reference) {
        assert!((got - want).abs() < 1e-9);
    }
}

#[test]
fn energy_and_clock_monotonically_increase() {
    let mut s = build_full_system();
    let mut last_t = Time::ZERO;
    let mut last_e = Energy::ZERO;
    for i in 0..5 {
        let (spots, strikes) = blackscholes::generate(1024, i);
        let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        s.call(NodeId(0), "blackscholes", &mut args).expect("runs");
        assert!(s.now() > last_t);
        assert!(s.energy() > last_e);
        last_t = s.now();
        last_e = s.energy();
    }
}

#[test]
fn unknown_kernel_is_a_clean_error() {
    let mut s = build_full_system();
    let err = s
        .call(
            NodeId(0),
            "nonexistent",
            &mut ecoscale::hls::KernelArgs::new(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("nonexistent"));
}

#[test]
fn opencl_frontend_runs_against_the_same_platform() {
    use ecoscale::runtime::{BufferScope, Distribution, KernelObject, Platform};
    let platform = Platform::new(&[4, 4]);
    assert_eq!(platform.num_devices(), 16);
    let mut ctx = platform.create_context(64 << 20);
    let q0 = ctx.create_queue(NodeId(0));
    let q1 = ctx.create_queue(NodeId(8));
    let buf = ctx
        .create_buffer(8 << 20, BufferScope::Partitioned(Distribution::Block))
        .expect("allocates");
    let k = KernelObject::new("stencil", 8, 5);
    let w = ctx.enqueue_write(q0, buf, &[]);
    let r0 = ctx.enqueue_kernel(q0, &k, 500_000, &[buf], &[w]);
    // cross-queue dependency: q1 consumes q0's output
    let r1 = ctx.enqueue_kernel(q1, &k, 500_000, &[buf], &[r0]);
    assert!(ctx.event_time(r1) > ctx.event_time(r0));
    assert!(ctx.energy().as_uj() > 0.0);
}

#[test]
fn hybrid_sort_and_system_agree_on_scale() {
    use ecoscale::apps::sort::{distributed_sort, generate, SortMode};
    let data = generate(30_000, 11);
    let out = distributed_sort(&data, 4, 4, SortMode::Hybrid, 2);
    assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(out.sorted.len(), data.len());
}

#[test]
fn power_extrapolation_brackets_the_paper() {
    use ecoscale::core::{machine_power_for_exaflop, MachineClass};
    let gw = machine_power_for_exaflop(MachineClass::Tianhe2, 1.0, 1.9);
    assert!(gw.facility_power.as_megawatts() > 900.0);
    let eco = machine_power_for_exaflop(MachineClass::EcoscaleWorker, 1.0, 1.4);
    assert!(eco.facility_power.as_megawatts() < gw.facility_power.as_megawatts() / 10.0);
}

#[test]
fn compression_applies_to_real_library_bitstreams() {
    use ecoscale::fpga::CompressionAlgo;
    let s = build_full_system();
    for entry in s.library().iter() {
        let bs = entry.module.bitstream();
        for algo in CompressionAlgo::ALL {
            let packed = algo.compress(bs);
            let back = algo.decompress(&packed);
            assert_eq!(back.as_bytes(), bs.as_bytes());
        }
        // synthetic library bitstreams compress well
        let ratio = CompressionAlgo::Lz.stats(bs).ratio();
        assert!(ratio > 1.5, "{}: ratio {ratio}", entry.module.name());
    }
}

#[test]
fn remote_worker_borrows_accelerator_over_unilogic() {
    let mut s = build_full_system();
    // only worker 0 gets the module
    s.load_module(NodeId(0), "blackscholes").expect("fits");
    // worker 10 (different compute node) warms up CPU + gets hardware
    // history injected from worker 0's measurements
    for _ in 0..10 {
        let (spots, strikes) = blackscholes::generate(16_384, 9);
        let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        s.call(NodeId(10), "blackscholes", &mut args).expect("runs");
    }
    for _ in 0..2 {
        let (spots, strikes) = blackscholes::generate(16_384, 9);
        let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        s.call(NodeId(0), "blackscholes", &mut args).expect("runs");
    }
    let hw_time = s
        .worker(NodeId(0))
        .history()
        .mean_time("blackscholes", DeviceClass::FpgaLocal)
        .expect("worker 0 measured hardware");
    for _ in 0..4 {
        s.worker_mut(NodeId(10)).history_mut().record(
            "blackscholes",
            DeviceClass::FpgaLocal,
            vec![0.02, 0.3, 1.0, 16_384.0], // scalar declaration order: r, sigma, t, n
            hw_time,
            Energy::ZERO,
        );
    }
    let (spots, strikes) = blackscholes::generate(16_384, 9);
    let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
    let out = s.call(NodeId(10), "blackscholes", &mut args).expect("runs");
    assert_eq!(out.device, DeviceClass::FpgaRemote);
    assert_eq!(out.served_by, NodeId(0));
}

#[test]
fn fork_join_graph_scales_on_the_worker_pool() {
    use ecoscale::runtime::graph::TaskGraph;
    use ecoscale::runtime::CpuModel;
    let g = TaskGraph::fork_join(64, 400_000, 16);
    let cpu = CpuModel::a53_default();
    let serial = g.execute(1, &cpu).expect("acyclic");
    let parallel = g.execute(16, &cpu).expect("acyclic");
    assert!(parallel.makespan.as_ns() * 8 < serial.makespan.as_ns());
    assert!(parallel.makespan >= g.critical_path(&cpu).expect("acyclic"));
}

#[test]
fn preemption_checkpoints_and_resumes_a_library_module() {
    use ecoscale::fpga::PreemptModel;
    let s = build_full_system();
    let module = &s.library().get("blackscholes").expect("synthesized").module;
    let pm = PreemptModel::default();
    let total = 1_000_000u64;
    let (ctx, chk_lat, chk_e) = pm.checkpoint(module, total / 2);
    assert!(chk_lat > ecoscale::sim::Duration::ZERO);
    assert!(chk_e.as_nj() > 0.0);
    let (res_lat, _) = pm.restore(module, &ctx);
    // resuming halfway beats restarting
    let resume = chk_lat + res_lat + pm.remaining_latency(module, &ctx, total);
    assert!(resume < module.batch_latency(total));
}

#[test]
fn unimem_atomics_implement_a_global_barrier() {
    use ecoscale::mem::{CacheConfig, DramModel, GlobalAddr, UnimemSystem};
    use ecoscale::noc::{Network, NetworkConfig, TreeTopology};
    let w = 16usize;
    let mut net = Network::new(TreeTopology::new(&[4, 4]), NetworkConfig::default());
    let mut mem = UnimemSystem::new(w, CacheConfig::l1_default(), DramModel::default());
    let counter = GlobalAddr::new(NodeId(0), 0x4000);
    // sense-reversing barrier, phase 1: everyone increments
    let mut t = Time::ZERO;
    for i in 0..w {
        let (old, acc) = mem.fetch_add(&mut net, t, NodeId(i), counter, 1);
        assert_eq!(old, i as i64);
        t = acc.completion;
    }
    let (val, _) = mem.fetch_add(&mut net, t, NodeId(0), counter, 0);
    assert_eq!(val as usize, w, "all arrivals observed");
}

#[test]
fn folded_kernels_run_through_the_system_identically() {
    use ecoscale::hls::{fold_kernel, parse_kernel, KernelArgs};
    let src = "kernel waste(in float a[], out float b[], int n) {
        for (i in 0 .. n) { b[i] = a[i] * (1.0 + 0.0) + sqrt(4.0) - 2.0 + 0.0; }
    }";
    let k = parse_kernel(src).expect("parses");
    let folded = fold_kernel(&k);
    let run = |kernel| {
        let mut args = KernelArgs::new();
        args.bind_array("a", (0..64).map(|i| i as f64).collect())
            .bind_array("b", vec![0.0; 64])
            .bind_scalar("n", 64.0);
        args.run(kernel).expect("executes");
        args.take_array("b").expect("bound")
    };
    assert_eq!(run(&k), run(&folded));
    // the printer round-trips the folded kernel too
    let reparsed = parse_kernel(&folded.to_string()).expect("printed source parses");
    assert_eq!(folded, reparsed);
}
