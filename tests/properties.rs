//! Property-style tests on the core data structures and invariants,
//! spanning crates.
//!
//! Each test draws many random cases from a seeded [`SimRng`] (the
//! workspace carries no external dependencies, so these are hand-rolled
//! case loops rather than proptest strategies). Failures print the case
//! seed so a run can be reproduced exactly.

use std::collections::BTreeMap;

use ecoscale::fpga::{
    Bitstream, CompressionAlgo, Fabric, Floorplanner, ModuleId, Region, Resources,
};
use ecoscale::mem::{PagePerms, PageTable, Smmu, SmmuConfig, VirtAddr};
use ecoscale::noc::{Dragonfly, Mesh2d, NodeId, Topology, TreeTopology};
use ecoscale::sim::{Duration, OnlineStats, SimRng, Time};

const CASES: u64 = 64;

/// One seeded generator per case, salted so tests are independent.
fn case_rng(test_salt: u64, case: u64) -> SimRng {
    SimRng::seed_from(0xEC05_CA1E ^ (test_salt << 32) ^ case)
}

// ----------------------------------------------------------------------
// sim: time arithmetic
// ----------------------------------------------------------------------
#[test]
fn time_plus_duration_roundtrips() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let base = rng.gen_range_u64(0, 1 << 40);
        let delta = rng.gen_range_u64(0, 1 << 40);
        let t = Time::from_ps(base);
        let d = Duration::from_ps(delta);
        assert_eq!((t + d) - d, t, "case {case}");
        assert_eq!((t + d) - t, d, "case {case}");
        assert_eq!((t + d).since(t), d, "case {case}");
    }
}

#[test]
fn online_stats_merge_matches_sequential() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let len = rng.gen_range_usize(1, 200);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range_f64(-1e6, 1e6)).collect();
        let split = rng.gen_range_usize(0, 200).min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count(), "case {case}");
        assert!((a.mean() - whole.mean()).abs() < 1e-6, "case {case}");
        assert!(
            (a.variance() - whole.variance()).abs() < 1e-3,
            "case {case}"
        );
        assert_eq!(a.min(), whole.min(), "case {case}");
        assert_eq!(a.max(), whole.max(), "case {case}");
    }
}

// ----------------------------------------------------------------------
// noc: routing invariants over arbitrary topologies
// ----------------------------------------------------------------------
#[test]
fn tree_routes_within_diameter() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let levels = rng.gen_range_usize(1, 4);
        let fanouts: Vec<usize> = (0..levels).map(|_| rng.gen_range_usize(2, 5)).collect();
        let t = TreeTopology::new(&fanouts);
        let n = t.num_nodes();
        let s = rng.gen_range_usize(0, 1000) % n;
        let d = rng.gen_range_usize(0, 1000) % n;
        let r = t.route(NodeId(s), NodeId(d));
        assert!(r.hop_count() <= t.diameter(), "case {case}");
        assert_eq!(r.is_local(), s == d, "case {case}");
        // symmetric lengths
        let back = t.route(NodeId(d), NodeId(s));
        assert_eq!(r.hop_count(), back.hop_count(), "case {case}");
    }
}

#[test]
fn mesh_routes_are_manhattan() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let w = rng.gen_range_usize(2, 8);
        let h = rng.gen_range_usize(2, 8);
        let m = Mesh2d::new(w, h);
        let n = m.num_nodes();
        let s = rng.gen_range_usize(0, 64) % n;
        let d = rng.gen_range_usize(0, 64) % n;
        let hops = m.route(NodeId(s), NodeId(d)).hop_count() as usize;
        let (sx, sy) = (s % w, s / w);
        let (dx, dy) = (d % w, d / w);
        assert_eq!(hops, sx.abs_diff(dx) + sy.abs_diff(dy), "case {case}");
    }
}

#[test]
fn dragonfly_minimal_routes() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let g = rng.gen_range_usize(2, 5);
        let r = rng.gen_range_usize(2, 4);
        let e = rng.gen_range_usize(1, 4);
        let df = Dragonfly::new(g, r, e);
        let n = df.num_nodes();
        let s = rng.gen_range_usize(0, 100) % n;
        let d = rng.gen_range_usize(0, 100) % n;
        let route = df.route(NodeId(s), NodeId(d));
        assert!(route.hop_count() <= 5, "case {case}");
        assert_eq!(route.is_local(), s == d, "case {case}");
    }
}

// ----------------------------------------------------------------------
// mem: page table and SMMU
// ----------------------------------------------------------------------
#[test]
fn page_table_translate_is_what_was_mapped() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let entries = rng.gen_range_usize(1, 50);
        let mut pages: BTreeMap<u64, u64> = BTreeMap::new();
        while pages.len() < entries {
            pages.insert(rng.gen_range_u64(0, 1 << 20), rng.gen_range_u64(0, 1 << 20));
        }
        let mut pt = PageTable::new(4);
        for (&vp, &pp) in &pages {
            pt.map(vp, pp, PagePerms::RW).expect("fresh mapping");
        }
        for (&vp, &pp) in &pages {
            assert_eq!(pt.translate(vp, PagePerms::READ), Ok(pp), "case {case}");
        }
        assert_eq!(pt.mapped_pages(), pages.len(), "case {case}");
    }
}

#[test]
fn smmu_translation_is_stable_under_tlb_pressure() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let len = rng.gen_range_usize(1, 100);
        let pages: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0, 512)).collect();
        let cfg = SmmuConfig {
            tlb_entries: 8,
            ..SmmuConfig::default()
        };
        let mut smmu = Smmu::new(cfg);
        let mut expected = std::collections::HashMap::new();
        for (i, &p) in pages.iter().enumerate() {
            if let std::collections::hash_map::Entry::Vacant(slot) = expected.entry(p) {
                let pa = 0x1000 + i as u64;
                smmu.map(
                    VirtAddr::from_page(p, 0),
                    0x100 + i as u64,
                    pa,
                    PagePerms::RW,
                )
                .expect("fresh mapping");
                slot.insert(pa);
            }
        }
        // translate everything twice (evictions in between must not
        // change results)
        for _ in 0..2 {
            for &p in &pages {
                let (pa, _) = smmu
                    .translate(VirtAddr::from_page(p, 7), PagePerms::READ)
                    .expect("mapped");
                assert_eq!(pa.page(), expected[&p], "case {case}");
                assert_eq!(pa.page_offset(), 7, "case {case}");
            }
        }
    }
}

// ----------------------------------------------------------------------
// fpga: compression round-trips on arbitrary data
// ----------------------------------------------------------------------
#[test]
fn compression_roundtrips_arbitrary_bytes() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let mut data = vec![0u8; rng.gen_range_usize(0, 4096)];
        rng.fill_bytes(&mut data);
        let bs = Bitstream::from_bytes(data);
        for algo in CompressionAlgo::ALL {
            let packed = algo.compress(&bs);
            let back = algo.decompress(&packed);
            assert_eq!(
                back.as_bytes(),
                bs.as_bytes(),
                "case {case}: {} failed",
                algo.name()
            );
        }
    }
}

#[test]
fn compression_roundtrips_run_structured_bytes() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let runs = rng.gen_range_usize(1, 64);
        let mut data = Vec::new();
        for _ in 0..runs {
            let byte = rng.gen_range_u64(0, 256) as u8;
            let len = rng.gen_range_usize(1, 64);
            data.extend(std::iter::repeat_n(byte, len));
        }
        let bs = Bitstream::from_bytes(data);
        for algo in CompressionAlgo::ALL {
            let back = algo.decompress(&algo.compress(&bs));
            assert_eq!(back.as_bytes(), bs.as_bytes(), "case {case}");
        }
    }
}

// ----------------------------------------------------------------------
// fpga: floorplanner never overlaps, defrag preserves demands
// ----------------------------------------------------------------------
#[test]
fn floorplan_no_overlaps_under_churn() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let steps = rng.gen_range_usize(1, 60);
        let fabric = Fabric::zynq_like(50, 60);
        let mut fp = Floorplanner::new(fabric);
        let mut live = Vec::new();
        for i in 0..steps {
            let load = rng.gen_bool(0.5);
            let clb = rng.gen_range_u64(50, 900) as u32;
            if load || live.is_empty() {
                if let Ok(slot) =
                    fp.place(ModuleId(i as u32), Resources::new(clb, clb / 40, clb / 30))
                {
                    live.push(slot);
                }
            } else {
                let slot = live.remove(i % live.len());
                assert!(fp.remove(slot), "case {case}");
            }
            // invariant: no two placements overlap
            let ps: Vec<_> = fp.placements().copied().collect();
            for (a, p) in ps.iter().enumerate() {
                for q in &ps[a + 1..] {
                    let r1 = Region {
                        col: p.col,
                        width: p.width,
                        row: 0,
                        height: 1,
                    };
                    let r2 = Region {
                        col: q.col,
                        width: q.width,
                        row: 0,
                        height: 1,
                    };
                    assert!(!r1.overlaps(&r2), "case {case}");
                }
            }
        }
        // defragment and re-check: compaction leaves zero external
        // fragmentation and keeps everything placed
        let before = fp.live();
        fp.defragment();
        assert_eq!(fp.live(), before, "case {case}");
        assert!(fp.fragmentation() < 1e-9, "case {case}");
    }
}

// ----------------------------------------------------------------------
// hls: interpreter equals Rust reference on random inputs
// ----------------------------------------------------------------------
#[test]
fn gemm_kernel_equals_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let n = rng.gen_range_usize(2, 8);
        let seed = rng.gen_range_u64(0, 1000);
        let a = ecoscale::apps::gemm::generate(n, seed);
        let b = ecoscale::apps::gemm::generate(n, seed + 1);
        let k = ecoscale::hls::parse_kernel(ecoscale::apps::gemm::KERNEL).expect("parses");
        let mut args = ecoscale::apps::gemm::bind_args(&a, &b, n);
        args.run(&k).expect("executes");
        let want = ecoscale::apps::gemm::reference(&a, &b, n);
        for (g, r) in args.array("c").expect("bound").iter().zip(&want) {
            assert!((g - r).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn stencil_kernel_equals_reference() {
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let n = rng.gen_range_usize(2, 10);
        let seed = rng.gen_range_u64(0, 1000);
        let grid = ecoscale::apps::stencil::generate(n, seed);
        let k = ecoscale::hls::parse_kernel(ecoscale::apps::stencil::KERNEL).expect("parses");
        let mut args = ecoscale::apps::stencil::bind_args(&grid, n);
        args.run(&k).expect("executes");
        let want = ecoscale::apps::stencil::reference_step(&grid, n);
        for (g, r) in args.array("next").expect("bound").iter().zip(&want) {
            assert!((g - r).abs() < 1e-12, "case {case}");
        }
    }
}

// ----------------------------------------------------------------------
// apps: distributed sort is a sorted permutation
// ----------------------------------------------------------------------
#[test]
fn distributed_sort_is_sorted_permutation() {
    // fewer cases: each sorts up to 2000 keys
    for case in 0..CASES / 2 {
        let mut rng = case_rng(13, case);
        let n = rng.gen_range_usize(16, 2000);
        let seed = rng.gen_range_u64(0, 100);
        let data = ecoscale::apps::sort::generate(n, seed);
        let out = ecoscale::apps::sort::distributed_sort(
            &data,
            2,
            2,
            ecoscale::apps::sort::SortMode::Hybrid,
            seed,
        );
        assert_eq!(out.sorted.len(), n, "case {case}");
        assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]), "case {case}");
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        assert_eq!(out.sorted, expect, "case {case}");
    }
}

// ----------------------------------------------------------------------
// runtime: prediction models
// ----------------------------------------------------------------------
#[test]
fn linear_model_recovers_exact_lines() {
    use ecoscale::runtime::{LinearModel, Predictor};
    for case in 0..CASES {
        let mut rng = case_rng(14, case);
        let w0 = rng.gen_range_f64(-100.0, 100.0);
        let w1 = rng.gen_range_f64(-100.0, 100.0);
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| w0 + w1 * i as f64).collect();
        let mut m = LinearModel::new();
        m.fit(&xs, &ys);
        let y = m.predict(&[50.0]).expect("fitted");
        assert!((y - (w0 + w1 * 50.0)).abs() < 1e-5, "case {case}");
    }
}

// ----------------------------------------------------------------------
// hls: printer/parser round trip on random kernels
// ----------------------------------------------------------------------
fn arb_expr(rng: &mut SimRng, depth: u32) -> ecoscale::hls::Expr {
    use ecoscale::hls::{BinOp, Expr, UnOp};
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range_usize(0, 4) {
            0 => Expr::Const(
                rng.gen_range_u64(0, 100) as f64 + rng.gen_range_u64(0, 10) as f64 / 10.0,
            ),
            1 => Expr::var("x"),
            2 => Expr::var("i"),
            _ => Expr::load("a", Expr::var("i")),
        };
    }
    match rng.gen_range_usize(0, 3) {
        0 => {
            const OPS: [BinOp; 14] = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Min,
                BinOp::Max,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::Eq,
                BinOp::And,
                BinOp::Or,
                BinOp::Rem,
            ];
            let op = *rng.choose(&OPS);
            let a = arb_expr(rng, depth - 1);
            let b = arb_expr(rng, depth - 1);
            Expr::bin(op, a, b)
        }
        1 => {
            const OPS: [UnOp; 7] = [
                UnOp::Neg,
                UnOp::Sqrt,
                UnOp::Exp,
                UnOp::Log,
                UnOp::Abs,
                UnOp::Floor,
                UnOp::Not,
            ];
            let op = *rng.choose(&OPS);
            let a = arb_expr(rng, depth - 1);
            Expr::un(op, a)
        }
        _ => {
            let cond = arb_expr(rng, depth - 1);
            let then = arb_expr(rng, depth - 1);
            let els = arb_expr(rng, depth - 1);
            Expr::Select {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            }
        }
    }
}

fn arb_stmt(rng: &mut SimRng, depth: u32) -> ecoscale::hls::Stmt {
    use ecoscale::hls::Stmt;
    if depth == 0 || rng.gen_bool(0.5) {
        if rng.gen_bool(0.5) {
            Stmt::Assign {
                var: "t".into(),
                value: arb_expr(rng, 2),
            }
        } else {
            Stmt::Store {
                array: "b".into(),
                index: arb_expr(rng, 2),
                value: arb_expr(rng, 2),
            }
        }
    } else if rng.gen_bool(0.5) {
        let start = arb_expr(rng, 1);
        let end = arb_expr(rng, 1);
        let body = (0..rng.gen_range_usize(1, 3))
            .map(|_| arb_stmt(rng, depth - 1))
            .collect();
        Stmt::For {
            var: "j".into(),
            start,
            end,
            body,
        }
    } else {
        let cond = arb_expr(rng, 1);
        let then = (0..rng.gen_range_usize(1, 3))
            .map(|_| arb_stmt(rng, depth - 1))
            .collect();
        let els = (0..rng.gen_range_usize(0, 2))
            .map(|_| arb_stmt(rng, depth - 1))
            .collect();
        Stmt::If { cond, then, els }
    }
}

// ----------------------------------------------------------------------
// CheckPlane differential oracles: optimized implementations vs small
// obviously-correct reference models driven by the same op stream, with
// seed-reproducible shrinking of failing streams (sim::check::shrink).
// ----------------------------------------------------------------------

/// Runs `replay` (None = agreement); on divergence shrinks the op stream
/// to a 1-minimal failing subsequence and panics with the repro.
fn assert_lockstep<T: Clone + std::fmt::Debug>(
    what: &str,
    case: u64,
    ops: &[T],
    mut replay: impl FnMut(&[T]) -> Option<String>,
) {
    if let Some(msg) = replay(ops) {
        let min = ecoscale::sim::check::shrink(ops, |s| replay(s).is_some());
        let detail = replay(&min).unwrap_or_else(|| msg.clone());
        panic!(
            "{what} diverged from its oracle (case {case}): {detail}\n\
             minimal failing stream ({} of {} ops): {min:?}",
            min.len(),
            ops.len(),
        );
    }
}

#[derive(Debug, Clone, Copy)]
enum QueueOp {
    /// Schedule at `now + dt_ps` (0 lands in the same-instant FIFO ring).
    Schedule(u64),
    /// Schedule at `now` via the dedicated ring fast path.
    ScheduleNow,
    Pop,
    /// `pop_if_at_or_before(now + dh_ps)`.
    PopHorizon(u64),
}

#[test]
fn event_queue_matches_sequential_oracle() {
    use ecoscale::sim::EventQueue;
    for case in 0..CASES {
        let mut rng = case_rng(16, case);
        let len = rng.gen_range_usize(1, 120);
        let ops: Vec<QueueOp> = (0..len)
            .map(|_| match rng.gen_range_usize(0, 5) {
                0 => QueueOp::Schedule(rng.gen_range_u64(0, 1_000)),
                1 => QueueOp::ScheduleNow,
                2 => QueueOp::PopHorizon(rng.gen_range_u64(0, 500)),
                _ => QueueOp::Pop,
            })
            .collect();
        // Oracle: a flat vector popped by the total order (time, global
        // scheduling index) — the queue's documented delivery order across
        // both the binary heap and the same-instant ring.
        assert_lockstep("EventQueue", case, &ops, |ops| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut model: Vec<(Time, u64)> = Vec::new();
            let mut next_id = 0u64;
            let model_pop = |model: &mut Vec<(Time, u64)>| -> Option<(Time, u64)> {
                let best = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, id))| (t, id))
                    .map(|(i, _)| i)?;
                Some(model.remove(best))
            };
            for (step, op) in ops.iter().enumerate() {
                match *op {
                    QueueOp::Schedule(dt) => {
                        let at = q.now() + Duration::from_ps(dt);
                        q.schedule(at, next_id);
                        model.push((at, next_id));
                        next_id += 1;
                    }
                    QueueOp::ScheduleNow => {
                        q.schedule_now(next_id);
                        model.push((q.now(), next_id));
                        next_id += 1;
                    }
                    QueueOp::Pop => {
                        let got = q.pop();
                        let want = model_pop(&mut model);
                        if got != want {
                            return Some(format!("step {step} pop: {got:?} != {want:?}"));
                        }
                    }
                    QueueOp::PopHorizon(dh) => {
                        let horizon = q.now() + Duration::from_ps(dh);
                        let got = q.pop_if_at_or_before(horizon);
                        let due = model
                            .iter()
                            .map(|&(t, _)| t)
                            .min()
                            .is_some_and(|t| t <= horizon);
                        let want = if due { model_pop(&mut model) } else { None };
                        if got != want {
                            return Some(format!(
                                "step {step} pop_if_at_or_before({horizon}): {got:?} != {want:?}"
                            ));
                        }
                    }
                }
                if q.len() != model.len() {
                    return Some(format!(
                        "step {step}: len {} != oracle {}",
                        q.len(),
                        model.len()
                    ));
                }
                let want_peek = model.iter().map(|&(t, _)| t).min();
                if q.peek_time() != want_peek {
                    return Some(format!(
                        "step {step}: peek_time {:?} != oracle {want_peek:?}",
                        q.peek_time()
                    ));
                }
            }
            None
        });
    }
}

#[test]
fn cache_matches_linear_scan_oracle() {
    use ecoscale::mem::{Cache, CacheAccess, CacheConfig};

    #[derive(Debug, Clone, Copy)]
    struct RefLine {
        tag: u64,
        dirty: bool,
        lru: u64,
    }

    for case in 0..CASES {
        let mut rng = case_rng(17, case);
        let config = CacheConfig {
            capacity: 1024,
            line_size: 64,
            ways: 2,
        };
        let sets = (config.capacity / config.line_size) as usize / config.ways;
        let len = rng.gen_range_usize(1, 200);
        let ops: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.gen_range_u64(0, 8 * config.capacity), rng.gen_bool(0.4)))
            .collect();
        // Oracle: per-set linear scan with exact-LRU replacement (first
        // invalid slot, else the minimum-stamp line, first on ties).
        assert_lockstep("Cache", case, &ops, |ops| {
            let mut cache = Cache::new(config);
            let mut model: Vec<Vec<Option<RefLine>>> = vec![vec![None; config.ways]; sets];
            let (mut hits, mut misses, mut writebacks) = (0u64, 0u64, 0u64);
            let mut clock = 0u64;
            for (step, &(addr, write)) in ops.iter().enumerate() {
                clock += 1;
                let line = addr / config.line_size;
                let set_idx = (line % sets as u64) as usize;
                let tag = line / sets as u64;
                let set = &mut model[set_idx];
                let want = if let Some(l) = set.iter_mut().flatten().find(|l| l.tag == tag) {
                    l.lru = clock;
                    l.dirty |= write;
                    hits += 1;
                    CacheAccess::Hit
                } else {
                    misses += 1;
                    let slot = set.iter().position(Option::is_none).unwrap_or_else(|| {
                        set.iter()
                            .enumerate()
                            .min_by_key(|(_, l)| l.expect("set is full").lru)
                            .map(|(i, _)| i)
                            .expect("ways > 0")
                    });
                    let outcome = match set[slot] {
                        Some(v) if v.dirty => {
                            writebacks += 1;
                            CacheAccess::MissDirtyEviction {
                                victim_addr: (v.tag * sets as u64 + set_idx as u64)
                                    * config.line_size,
                            }
                        }
                        _ => CacheAccess::Miss,
                    };
                    set[slot] = Some(RefLine {
                        tag,
                        dirty: write,
                        lru: clock,
                    });
                    outcome
                };
                let got = cache.access(addr, write);
                if got != want {
                    return Some(format!(
                        "step {step} access({addr:#x}): {got:?} != {want:?}"
                    ));
                }
            }
            if (cache.hits(), cache.misses(), cache.writebacks()) != (hits, misses, writebacks) {
                return Some(format!(
                    "counters ({}, {}, {}) != oracle ({hits}, {misses}, {writebacks})",
                    cache.hits(),
                    cache.misses(),
                    cache.writebacks()
                ));
            }
            None
        });
    }
}

#[derive(Debug, Clone, Copy)]
enum PtOp {
    Map {
        page: u64,
        out: u64,
        perms: PagePerms,
    },
    Unmap {
        page: u64,
    },
    Translate {
        page: u64,
        need: PagePerms,
    },
}

#[test]
fn page_table_matches_btreemap_oracle() {
    use ecoscale::mem::{MapPageError, TranslateError};
    const PERMS: [PagePerms; 4] = [
        PagePerms::READ,
        PagePerms::RW,
        PagePerms::WRITE,
        PagePerms::NONE,
    ];
    for case in 0..CASES {
        let mut rng = case_rng(18, case);
        let len = rng.gen_range_usize(1, 150);
        let ops: Vec<PtOp> = (0..len)
            .map(|_| {
                let page = rng.gen_range_u64(0, 24);
                match rng.gen_range_usize(0, 4) {
                    0 => PtOp::Map {
                        page,
                        out: rng.gen_range_u64(0, 1 << 20),
                        perms: *rng.choose(&PERMS),
                    },
                    1 => PtOp::Unmap { page },
                    _ => PtOp::Translate {
                        page,
                        need: *rng.choose(&[PagePerms::READ, PagePerms::WRITE, PagePerms::NONE]),
                    },
                }
            })
            .collect();
        // Oracle: a BTreeMap of page -> (out, perms) with the documented
        // error responses, including exact PermissionDenied payloads.
        assert_lockstep("PageTable", case, &ops, |ops| {
            let mut pt = PageTable::new(4);
            let mut model: BTreeMap<u64, (u64, PagePerms)> = BTreeMap::new();
            for (step, op) in ops.iter().enumerate() {
                match *op {
                    PtOp::Map { page, out, perms } => {
                        let want = match model.entry(page) {
                            std::collections::btree_map::Entry::Occupied(_) => {
                                Err(MapPageError::AlreadyMapped { page })
                            }
                            std::collections::btree_map::Entry::Vacant(slot) => {
                                slot.insert((out, perms));
                                Ok(())
                            }
                        };
                        let got = pt.map(page, out, perms);
                        if got != want {
                            return Some(format!("step {step} map: {got:?} != {want:?}"));
                        }
                    }
                    PtOp::Unmap { page } => {
                        let want = model.remove(&page).is_some();
                        let got = pt.unmap(page);
                        if got != want {
                            return Some(format!("step {step} unmap: {got} != {want}"));
                        }
                    }
                    PtOp::Translate { page, need } => {
                        let want = match model.get(&page) {
                            None => Err(TranslateError::NotMapped { page }),
                            Some(&(out, have)) if have.allows(need) => Ok(out),
                            Some(&(_, have)) => {
                                Err(TranslateError::PermissionDenied { page, have, need })
                            }
                        };
                        let got = pt.translate(page, need);
                        if got != want {
                            return Some(format!("step {step} translate: {got:?} != {want:?}"));
                        }
                        let want_perms = model.get(&page).map(|&(_, p)| p);
                        if pt.perms_of(page) != want_perms {
                            return Some(format!(
                                "step {step} perms_of: {:?} != {want_perms:?}",
                                pt.perms_of(page)
                            ));
                        }
                    }
                }
                if pt.mapped_pages() != model.len() {
                    return Some(format!(
                        "step {step}: {} mapped pages != oracle {}",
                        pt.mapped_pages(),
                        model.len()
                    ));
                }
            }
            None
        });
    }
}

#[test]
fn smmu_matches_always_walk_oracle() {
    use ecoscale::mem::{SmmuFault, TranslateError};
    // (vpn, need) translation stream against a TLB-free oracle that walks
    // both stages on every access. This is the oracle that catches cached
    // permission bugs: the TLB used to cache RW unconditionally, letting a
    // read-only page be written once resident.
    const PERMS: [PagePerms; 3] = [PagePerms::READ, PagePerms::RW, PagePerms::WRITE];
    for case in 0..CASES {
        let mut rng = case_rng(19, case);
        let pages = rng.gen_range_u64(1, 12);
        let mapped: Vec<(u64, PagePerms)> = (0..pages).map(|p| (p, *rng.choose(&PERMS))).collect();
        let len = rng.gen_range_usize(1, 150);
        let ops: Vec<(u64, PagePerms)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range_u64(0, pages + 2),
                    *rng.choose(&[PagePerms::READ, PagePerms::WRITE]),
                )
            })
            .collect();
        let config = SmmuConfig {
            tlb_entries: 4,
            ..SmmuConfig::default()
        };
        assert_lockstep("Smmu", case, &ops, |ops| {
            let mut smmu = Smmu::new(config);
            for &(vpn, perms) in &mapped {
                smmu.map(
                    VirtAddr::from_page(vpn, 0),
                    0x100 + vpn,
                    0x1000 + vpn,
                    perms,
                )
                .expect("fresh mapping");
            }
            for (step, &(vpn, need)) in ops.iter().enumerate() {
                let want = match mapped.iter().find(|&&(p, _)| p == vpn) {
                    None => Err(SmmuFault::Stage1(TranslateError::NotMapped { page: vpn })),
                    Some(&(_, have)) if !have.allows(need) => {
                        Err(SmmuFault::Stage1(TranslateError::PermissionDenied {
                            page: vpn,
                            have,
                            need,
                        }))
                    }
                    Some(_) => Ok(0x1000 + vpn),
                };
                let got = smmu
                    .translate(VirtAddr::from_page(vpn, 5), need)
                    .map(|(pa, _)| pa.page());
                if got != want {
                    return Some(format!(
                        "step {step} ({vpn:#x}, {need}): {got:?} != {want:?}"
                    ));
                }
            }
            let mut cp = ecoscale::sim::CheckPlane::enabled(1);
            smmu.check_invariants(&mut cp);
            cp.first().map(|v| format!("after stream: {v}"))
        });
    }
}

#[test]
fn kernel_print_parse_round_trip() {
    use ecoscale::hls::{Kernel, Param, ParamKind};
    for case in 0..48 {
        let mut rng = case_rng(15, case);
        let body: Vec<_> = (0..rng.gen_range_usize(1, 5))
            .map(|_| arb_stmt(&mut rng, 2))
            .collect();
        let k = Kernel::new(
            "rt",
            vec![
                Param::new("a", ParamKind::ArrayIn),
                Param::new("b", ParamKind::ArrayOut),
                Param::new("x", ParamKind::Scalar),
                Param::new("i", ParamKind::Scalar),
            ],
            body,
        );
        let printed = k.to_string();
        let reparsed = ecoscale::hls::parse_kernel(&printed)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{printed}"));
        assert_eq!(k, reparsed, "case {case}");
    }
}

// ----------------------------------------------------------------------
// sim: timing wheel vs event queue vs sorted-map oracle
// ----------------------------------------------------------------------

/// Lockstep oracle for the hierarchical timing wheel behind the sharded
/// engine: an interleaved schedule/pop workload is mirrored into the
/// wheel, the binary-heap [`EventQueue`], and a `BTreeMap` keyed by
/// `(time, sequence)`. All three must agree on every pop. The wheel is
/// driven with monotonically increasing keys, which matches the queue's
/// FIFO-at-equal-times contract.
#[test]
fn timing_wheel_matches_event_queue_and_btree_oracle() {
    use ecoscale::sim::{EventQueue, TimingWheel};
    for case in 0..CASES {
        let mut rng = case_rng(20, case);
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut oracle: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let steps = rng.gen_range_usize(50, 400);
        for step in 0..steps {
            if rng.gen_bool(0.55) || oracle.is_empty() {
                // Schedule a small batch at or after the current time;
                // occasionally far out, to cross wheel levels.
                for _ in 0..rng.gen_range_usize(1, 4) {
                    let horizon = if rng.gen_bool(0.15) { 1 << 40 } else { 50_000 };
                    let at = now + rng.gen_range_u64(0, horizon);
                    wheel.schedule(Time::from_ps(at), seq, seq);
                    queue.schedule(Time::from_ps(at), seq);
                    oracle.insert((at, seq), seq);
                    seq += 1;
                }
            } else {
                let (&(at, key), &payload) = oracle.iter().next().expect("oracle non-empty");
                oracle.remove(&(at, key));
                let (wt, wkey, wev) = wheel.pop().expect("wheel has events");
                let (qt, qev) = queue.pop().expect("queue has events");
                assert_eq!(
                    (wt.as_ps(), wkey, wev),
                    (at, key, payload),
                    "case {case} step {step}: wheel diverged from oracle"
                );
                assert_eq!(
                    (qt.as_ps(), qev),
                    (at, payload),
                    "case {case} step {step}: event queue diverged from oracle"
                );
                now = at;
            }
        }
        // Drain whatever is left; the three must agree to the last event.
        while let Some((&(at, key), &payload)) = oracle.iter().next() {
            oracle.remove(&(at, key));
            let (wt, wkey, wev) = wheel.pop().expect("wheel drains with oracle");
            let (qt, qev) = queue.pop().expect("queue drains with oracle");
            assert_eq!((wt.as_ps(), wkey, wev), (at, key, payload), "case {case}");
            assert_eq!((qt.as_ps(), qev), (at, payload), "case {case}");
        }
        assert!(wheel.is_empty(), "case {case}");
        assert!(queue.is_empty(), "case {case}");
    }
}

// ----------------------------------------------------------------------
// core: SnapPlane checkpoint/resume equivalence over fuzzed serving runs
// ----------------------------------------------------------------------

/// The SnapPlane headline guarantee, fuzzed: checkpoint a serving run at
/// an arbitrary mid-horizon instant, restore the snapshot into freshly
/// built cells, and run to drain — the merged serving ledger, metrics,
/// system report, and makespan must be byte-identical to the
/// uninterrupted run. Half the cases arm a fault campaign (SEU + SMMU
/// under scrubbing) and the cell count alternates, so the equivalence
/// holds across both the healthy and the degraded dispatch paths. Every
/// case then flips one random payload bit in the snapshot and requires a
/// typed checksum refusal, never a partially-applied restore.
#[test]
fn serve_checkpoint_resume_matches_uninterrupted_run() {
    use ecoscale::core::{
        linear_test_mix, run_serve_sim, serve_checkpoint, serve_resume, ServeSimConfig,
    };
    use ecoscale::runtime::ServeSpec;
    use ecoscale::sim::snap::SnapshotFile;
    use ecoscale::sim::{CampaignSpec, RestoreError};

    for case in 0..16 {
        let mut rng = case_rng(21, case);
        let seed = rng.gen_range_u64(1, 1 << 16);
        let tenants = rng.gen_range_u64(2, 6);
        let rate = rng.gen_range_u64(120_000, 280_000);
        let horizon_us = rng.gen_range_u64(300, 600);
        let batch = rng.gen_range_u64(2, 8);
        let spec = ServeSpec::parse(&format!(
            "seed={seed},tenants={tenants},rate={rate},horizon={horizon_us}us,\
             batch={batch},deadline=250us,queue=24"
        ))
        .expect("fuzzed spec parses");
        let mut cfg = ServeSimConfig::new(spec, linear_test_mix());
        cfg.items = 24;
        cfg.cells = 1 + rng.gen_range_usize(0, 2);
        if case % 2 == 1 {
            let fseed = rng.gen_range_u64(1, 100);
            cfg.faults =
                CampaignSpec::parse(&format!("seed={fseed},seu=200us,smmu=0.002,scrub=400us"))
                    .expect("fuzzed campaign parses");
        }
        let at = Time::ZERO + Duration::from_us(rng.gen_range_u64(40, horizon_us));

        let full = run_serve_sim(&cfg);
        let bytes = serve_checkpoint(&cfg, at);
        let resumed = serve_resume(&cfg, &bytes)
            .unwrap_or_else(|e| panic!("case {case}: resume refused: {e}"));

        assert_eq!(resumed.violations, 0, "case {case}: invariant violations");
        assert_eq!(
            resumed.serving.to_json(),
            full.serving.to_json(),
            "case {case}: serving ledger diverged after resume at {at}"
        );
        assert_eq!(
            resumed.metrics.to_json(),
            full.metrics.to_json(),
            "case {case}: metrics diverged after resume at {at}"
        );
        assert_eq!(
            resumed.report.to_json(),
            full.report.to_json(),
            "case {case}: system report diverged after resume at {at}"
        );
        assert_eq!(
            resumed.makespan, full.makespan,
            "case {case}: makespan diverged after resume at {at}"
        );

        // One random payload bit flipped must surface as a checksum
        // refusal for the section that owns the byte.
        let file = SnapshotFile::parse(&bytes).expect("case: snapshot parses");
        let sections: Vec<_> = file.sections().cloned().collect();
        let si = &sections[rng.gen_range_usize(0, sections.len())];
        let off = si.offset as usize + rng.gen_range_usize(0, si.len as usize);
        let mut bad = bytes.clone();
        bad[off] ^= 1 << rng.gen_range_usize(0, 8);
        match serve_resume(&cfg, &bad) {
            Err(RestoreError::BadChecksum { section, .. }) => assert_eq!(
                section, si.name,
                "case {case}: refusal named the wrong section"
            ),
            other => panic!(
                "case {case}: corrupt byte {off} in `{}` must be refused \
                 with BadChecksum, got {other:?}",
                si.name
            ),
        }
    }
}
