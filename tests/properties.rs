//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use proptest::prelude::*;

use ecoscale::fpga::{Bitstream, CompressionAlgo, Fabric, Floorplanner, ModuleId, Region, Resources};
use ecoscale::mem::{PagePerms, PageTable, Smmu, SmmuConfig, VirtAddr};
use ecoscale::noc::{Dragonfly, Mesh2d, NodeId, Topology, TreeTopology};
use ecoscale::sim::{Duration, OnlineStats, Time};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // sim: time arithmetic
    // ------------------------------------------------------------------
    #[test]
    fn time_plus_duration_roundtrips(base in 0u64..1 << 40, delta in 0u64..1 << 40) {
        let t = Time::from_ps(base);
        let d = Duration::from_ps(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn online_stats_merge_matches_sequential(xs in prop::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    // ------------------------------------------------------------------
    // noc: routing invariants over arbitrary topologies
    // ------------------------------------------------------------------
    #[test]
    fn tree_routes_within_diameter(fanouts in prop::collection::vec(2usize..5, 1..4), s in 0usize..1000, d in 0usize..1000) {
        let t = TreeTopology::new(&fanouts);
        let n = t.num_nodes();
        let (s, d) = (s % n, d % n);
        let r = t.route(NodeId(s), NodeId(d));
        prop_assert!(r.hop_count() <= t.diameter());
        prop_assert_eq!(r.is_local(), s == d);
        // symmetric lengths
        let back = t.route(NodeId(d), NodeId(s));
        prop_assert_eq!(r.hop_count(), back.hop_count());
    }

    #[test]
    fn mesh_routes_are_manhattan(w in 2usize..8, h in 2usize..8, s in 0usize..64, d in 0usize..64) {
        let m = Mesh2d::new(w, h);
        let n = m.num_nodes();
        let (s, d) = (s % n, d % n);
        let hops = m.route(NodeId(s), NodeId(d)).hop_count() as usize;
        let (sx, sy) = (s % w, s / w);
        let (dx, dy) = (d % w, d / w);
        prop_assert_eq!(hops, sx.abs_diff(dx) + sy.abs_diff(dy));
    }

    #[test]
    fn dragonfly_minimal_routes(g in 2usize..5, r in 2usize..4, e in 1usize..4, s in 0usize..100, d in 0usize..100) {
        let df = Dragonfly::new(g, r, e);
        let n = df.num_nodes();
        let (s, d) = (s % n, d % n);
        let route = df.route(NodeId(s), NodeId(d));
        prop_assert!(route.hop_count() <= 5);
        prop_assert_eq!(route.is_local(), s == d);
    }

    // ------------------------------------------------------------------
    // mem: page table and SMMU
    // ------------------------------------------------------------------
    #[test]
    fn page_table_translate_is_what_was_mapped(pages in prop::collection::btree_map(0u64..1 << 20, 0u64..1 << 20, 1..50)) {
        let mut pt = PageTable::new(4);
        for (&vp, &pp) in &pages {
            pt.map(vp, pp, PagePerms::RW).expect("fresh mapping");
        }
        for (&vp, &pp) in &pages {
            prop_assert_eq!(pt.translate(vp, PagePerms::READ), Ok(pp));
        }
        prop_assert_eq!(pt.mapped_pages(), pages.len());
    }

    #[test]
    fn smmu_translation_is_stable_under_tlb_pressure(pages in prop::collection::vec(0u64..512, 1..100)) {
        let mut cfg = SmmuConfig::default();
        cfg.tlb_entries = 8;
        let mut smmu = Smmu::new(cfg);
        let mut expected = std::collections::HashMap::new();
        for (i, &p) in pages.iter().enumerate() {
            if !expected.contains_key(&p) {
                let pa = 0x1000 + i as u64;
                smmu.map(VirtAddr::from_page(p, 0), 0x100 + i as u64, pa, PagePerms::RW)
                    .expect("fresh mapping");
                expected.insert(p, pa);
            }
        }
        // translate everything twice (evictions in between must not
        // change results)
        for _ in 0..2 {
            for &p in &pages {
                let (pa, _) = smmu.translate(VirtAddr::from_page(p, 7), PagePerms::READ).expect("mapped");
                prop_assert_eq!(pa.page(), expected[&p]);
                prop_assert_eq!(pa.page_offset(), 7);
            }
        }
    }

    // ------------------------------------------------------------------
    // fpga: compression round-trips on arbitrary data
    // ------------------------------------------------------------------
    #[test]
    fn compression_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let bs = Bitstream::from_bytes(data);
        for algo in CompressionAlgo::ALL {
            let packed = algo.compress(&bs);
            let back = algo.decompress(&packed);
            prop_assert_eq!(back.as_bytes(), bs.as_bytes(), "{} failed", algo.name());
        }
    }

    #[test]
    fn compression_roundtrips_run_structured_bytes(runs in prop::collection::vec((any::<u8>(), 1usize..64), 1..64) ) {
        let mut data = Vec::new();
        for (byte, len) in runs {
            data.extend(std::iter::repeat(byte).take(len));
        }
        let bs = Bitstream::from_bytes(data);
        for algo in CompressionAlgo::ALL {
            let back = algo.decompress(&algo.compress(&bs));
            prop_assert_eq!(back.as_bytes(), bs.as_bytes());
        }
    }

    // ------------------------------------------------------------------
    // fpga: floorplanner never overlaps, defrag preserves demands
    // ------------------------------------------------------------------
    #[test]
    fn floorplan_no_overlaps_under_churn(ops in prop::collection::vec((any::<bool>(), 50u32..900), 1..60)) {
        let fabric = Fabric::zynq_like(50, 60);
        let mut fp = Floorplanner::new(fabric);
        let mut live = Vec::new();
        for (i, (load, clb)) in ops.iter().enumerate() {
            if *load || live.is_empty() {
                if let Ok(slot) = fp.place(ModuleId(i as u32), Resources::new(*clb, clb / 40, clb / 30)) {
                    live.push(slot);
                }
            } else {
                let slot = live.remove(i % live.len());
                prop_assert!(fp.remove(slot));
            }
            // invariant: no two placements overlap
            let ps: Vec<_> = fp.placements().copied().collect();
            for (a, p) in ps.iter().enumerate() {
                for q in &ps[a + 1..] {
                    let r1 = Region { col: p.col, width: p.width, row: 0, height: 1 };
                    let r2 = Region { col: q.col, width: q.width, row: 0, height: 1 };
                    prop_assert!(!r1.overlaps(&r2));
                }
            }
        }
        // defragment and re-check: compaction leaves zero external
        // fragmentation and keeps everything placed
        let before = fp.live();
        fp.defragment();
        prop_assert_eq!(fp.live(), before);
        prop_assert!(fp.fragmentation() < 1e-9);
    }

    // ------------------------------------------------------------------
    // hls: interpreter equals Rust reference on random inputs
    // ------------------------------------------------------------------
    #[test]
    fn gemm_kernel_equals_reference(n in 2usize..8, seed in 0u64..1000) {
        let a = ecoscale::apps::gemm::generate(n, seed);
        let b = ecoscale::apps::gemm::generate(n, seed + 1);
        let k = ecoscale::hls::parse_kernel(ecoscale::apps::gemm::KERNEL).expect("parses");
        let mut args = ecoscale::apps::gemm::bind_args(&a, &b, n);
        args.run(&k).expect("executes");
        let want = ecoscale::apps::gemm::reference(&a, &b, n);
        for (g, r) in args.array("c").expect("bound").iter().zip(&want) {
            prop_assert!((g - r).abs() < 1e-9);
        }
    }

    #[test]
    fn stencil_kernel_equals_reference(n in 2usize..10, seed in 0u64..1000) {
        let grid = ecoscale::apps::stencil::generate(n, seed);
        let k = ecoscale::hls::parse_kernel(ecoscale::apps::stencil::KERNEL).expect("parses");
        let mut args = ecoscale::apps::stencil::bind_args(&grid, n);
        args.run(&k).expect("executes");
        let want = ecoscale::apps::stencil::reference_step(&grid, n);
        for (g, r) in args.array("next").expect("bound").iter().zip(&want) {
            prop_assert!((g - r).abs() < 1e-12);
        }
    }

    // ------------------------------------------------------------------
    // apps: distributed sort is a sorted permutation
    // ------------------------------------------------------------------
    #[test]
    fn distributed_sort_is_sorted_permutation(n in 16usize..2000, seed in 0u64..100) {
        let data = ecoscale::apps::sort::generate(n, seed);
        let out = ecoscale::apps::sort::distributed_sort(
            &data, 2, 2, ecoscale::apps::sort::SortMode::Hybrid, seed,
        );
        prop_assert_eq!(out.sorted.len(), n);
        prop_assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = data.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        prop_assert_eq!(out.sorted, expect);
    }

    // ------------------------------------------------------------------
    // runtime: prediction models
    // ------------------------------------------------------------------
    #[test]
    fn linear_model_recovers_exact_lines(w0 in -100.0f64..100.0, w1 in -100.0f64..100.0) {
        use ecoscale::runtime::{LinearModel, Predictor};
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| w0 + w1 * i as f64).collect();
        let mut m = LinearModel::new();
        m.fit(&xs, &ys);
        let y = m.predict(&[50.0]).expect("fitted");
        prop_assert!((y - (w0 + w1 * 50.0)).abs() < 1e-5);
    }
}

// ----------------------------------------------------------------------
// hls: printer/parser round trip on random kernels
// ----------------------------------------------------------------------
fn arb_expr(depth: u32) -> impl Strategy<Value = ecoscale::hls::Expr> {
    use ecoscale::hls::{BinOp, Expr, UnOp};
    let leaf = prop_oneof![
        (0u32..100, 0u32..10).prop_map(|(a, b)| Expr::Const(a as f64 + b as f64 / 10.0)),
        Just(Expr::var("x")),
        Just(Expr::var("i")),
        Just(Expr::load("a", Expr::var("i"))),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
                Just(BinOp::Min), Just(BinOp::Max), Just(BinOp::Lt), Just(BinOp::Le),
                Just(BinOp::Gt), Just(BinOp::Ge), Just(BinOp::Eq), Just(BinOp::And),
                Just(BinOp::Or), Just(BinOp::Rem),
            ])
                .prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            (inner.clone(), prop_oneof![
                Just(UnOp::Neg), Just(UnOp::Sqrt), Just(UnOp::Exp), Just(UnOp::Log),
                Just(UnOp::Abs), Just(UnOp::Floor), Just(UnOp::Not),
            ])
                .prop_map(|(a, op)| Expr::un(op, a)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Select {
                cond: Box::new(c),
                then: Box::new(t),
                els: Box::new(e),
            }),
        ]
    })
}

fn arb_stmt(depth: u32) -> impl Strategy<Value = ecoscale::hls::Stmt> {
    use ecoscale::hls::Stmt;
    let simple = prop_oneof![
        arb_expr(2).prop_map(|value| Stmt::Assign { var: "t".into(), value }),
        (arb_expr(2), arb_expr(2)).prop_map(|(index, value)| Stmt::Store {
            array: "b".into(),
            index,
            value,
        }),
    ];
    simple.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (arb_expr(1), arb_expr(1), prop::collection::vec(inner.clone(), 1..3)).prop_map(
                |(start, end, body)| Stmt::For {
                    var: "j".into(),
                    start,
                    end,
                    body,
                }
            ),
            (
                arb_expr(1),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner, 0..2)
            )
                .prop_map(|(cond, then, els)| Stmt::If { cond, then, els }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_print_parse_round_trip(body in prop::collection::vec(arb_stmt(2), 1..5)) {
        use ecoscale::hls::{Kernel, Param, ParamKind};
        let k = Kernel::new(
            "rt",
            vec![
                Param::new("a", ParamKind::ArrayIn),
                Param::new("b", ParamKind::ArrayOut),
                Param::new("x", ParamKind::Scalar),
                Param::new("i", ParamKind::Scalar),
            ],
            body,
        );
        let printed = k.to_string();
        let reparsed = ecoscale::hls::parse_kernel(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{printed}")))?;
        prop_assert_eq!(k, reparsed);
    }
}
