#!/usr/bin/env bash
# Wall-clock measurement of the sharded conservative-parallel DES engine
# plus the ProfPlane profile and ServePlane serving artifacts. Run from
# the repository root:
#
#   scripts/bench.sh                 # full measurement -> BENCH_parallel_des.json
#                                    #                  + BENCH_profile.json
#                                    #                  + BENCH_serve.json
#   scripts/bench.sh --smoke         # reduced workloads + JSON schema check
#
# Builds the bench binaries in release mode and runs:
#
# * `bench_parallel_des` — times the P1 cluster-partitioned model at
#   ECOSCALE_SHARDS = 1/2/4/8, asserts every shard count exports
#   byte-identically to the sequential run, and records wall-clock,
#   events/sec, measured wall speedup, and the critical-path speedup
#   bound per point (plus `host_cores` — wall speedup is meaningless
#   past it). Any extra arguments are passed through to this binary.
# * `bench_profile` — the ProfPlane artifact: critical-path blame
#   breakdown, shard-occupancy bands with the imbalance index, and the
#   engine's wall-clock phase timers (`--smoke` maps to its reduced
#   `--quick` scale).
# * `bench_serve` — the ServePlane artifact: multi-tenant serving at a
#   saturating offered load, batching on vs off plus a faulted lane;
#   asserts conservation, the batching goodput win, and bounded p99
#   degradation (`--smoke` maps to its reduced `--quick` scale).
#
# Compare fresh artifacts against the committed baselines with
# `bench_regress` (scripts/ci.sh runs that gate automatically).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p ecoscale-bench \
    --bin bench_parallel_des --bin bench_profile --bin bench_serve

./target/release/bench_parallel_des "$@"

if [[ "${1:-}" == "--smoke" ]]; then
    ./target/release/bench_profile --quick --out BENCH_profile.json
    ./target/release/bench_serve --quick --out BENCH_serve.json
else
    ./target/release/bench_profile --out BENCH_profile.json
    ./target/release/bench_serve --out BENCH_serve.json
fi
