#!/usr/bin/env bash
# Wall-clock measurement of the sharded conservative-parallel DES engine.
# Run from the repository root:
#
#   scripts/bench.sh                 # full measurement -> BENCH_parallel_des.json
#   scripts/bench.sh --smoke         # reduced workload + JSON schema check
#
# Builds the workspace in release mode and runs `bench_parallel_des`,
# which times the P1 cluster-partitioned model at ECOSCALE_SHARDS =
# 1/2/4/8, asserts every shard count exports byte-identically to the
# sequential run, and records wall-clock, events/sec, measured wall
# speedup, and the critical-path speedup bound per point (plus
# `host_cores` — wall speedup is meaningless past it). Any extra
# arguments are passed through to the binary.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p ecoscale-bench --bin bench_parallel_des

./target/release/bench_parallel_des "$@"
