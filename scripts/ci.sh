#!/usr/bin/env bash
# Tier-1 gate plus lints. Run from the repository root:
#
#   scripts/ci.sh            # full gate
#   scripts/ci.sh --bless    # regenerate tests/golden/ schema snapshots
#
# Mirrors what the roadmap calls the tier-1 command (`cargo build
# --release && cargo test -q`) and adds deny-warnings clippy, rustfmt,
# and rustdoc passes over every target. The workspace is
# dependency-free, so everything works offline.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bless" ]]; then
    echo "== bless golden schemas (tests/golden/) =="
    ECOSCALE_BLESS=1 cargo test -q --test golden
    git --no-pager diff --stat -- tests/golden/ || true
    exit 0
fi

echo "== rustfmt =="
cargo fmt --check

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: smoke fault campaign =="
# Small seeded FaultPlane campaign through the resilience sweeps: must
# run clean, and a repeat must be byte-identical (campaign determinism).
FAULTS="seed=3,crash=1ms,seu=400us,scrub=800us"
./target/release/exp_all --scale quick --faults "$FAULTS" e16 e16b \
    > target/fault_smoke_a.txt
./target/release/exp_all --scale quick --faults "$FAULTS" e16 e16b \
    > target/fault_smoke_b.txt
cmp target/fault_smoke_a.txt target/fault_smoke_b.txt

echo "== tier-1: snapshot round-trip smoke (SnapPlane) =="
# Checkpoint a serving run mid-horizon, resume it, and require stdout and
# the serving JSON export to be byte-identical to the uninterrupted run.
# A corrupted snapshot must be refused with exit 2.
SERVE="seed=11,tenants=3,rate=150000,horizon=300us,batch=4"
./target/release/exp_all --scale quick --serve "$SERVE" \
    --serve-out target/snap_smoke_full.json e01 > target/snap_smoke_full.txt
./target/release/exp_all --scale quick --serve "$SERVE" \
    --snapshot-at 120us --snapshot-out target/snap_smoke.snap e01 \
    > /dev/null
./target/release/exp_all --scale quick --serve "$SERVE" \
    --resume target/snap_smoke.snap \
    --serve-out target/snap_smoke_resumed.json e01 > target/snap_smoke_resumed.txt
cmp target/snap_smoke_full.txt target/snap_smoke_resumed.txt
cmp target/snap_smoke_full.json target/snap_smoke_resumed.json
truncate -s -1 target/snap_smoke.snap
if ./target/release/exp_all --scale quick --serve "$SERVE" \
    --resume target/snap_smoke.snap e01 > /dev/null 2> target/snap_smoke_err.txt
then
    echo "ci.sh: corrupted snapshot was not refused" >&2
    exit 1
fi
grep -q "refusing snapshot" target/snap_smoke_err.txt

echo "== tier-1: flight-recorder trigger smoke (TelePlane) =="
# An unmeetable 1us deadline forces a windowed-p99 SLO breach, so the
# flight recorder must fire and the evidence bundle (flight.json +
# pre-trigger snapshot.bin) must land in the dump directory and parse.
BREACH="seed=21,tenants=4,rate=100000,horizon=500us,batch=4,deadline=1us"
rm -rf target/flight_smoke
./target/release/exp_all --scale quick --serve "$BREACH" \
    --telemetry target/telem_smoke.json \
    --flight-dump target/flight_smoke e01 > /dev/null 2> target/telem_smoke_err.txt
grep -q "wrote flight dump" target/telem_smoke_err.txt
test -s target/flight_smoke/flight.json
test -s target/flight_smoke/snapshot.bin
grep -q '"slo_breach"' target/flight_smoke/flight.json
grep -q '"windows"' target/telem_smoke.json
# telemetry capture must be deterministic: a repeat is byte-identical
./target/release/exp_all --scale quick --serve "$BREACH" \
    --telemetry target/telem_smoke_b.json e01 > /dev/null 2>&1
cmp target/telem_smoke.json target/telem_smoke_b.json

echo "== tier-1: seeded fuzz smoke (CheckPlane) =="
# 64 seeded configs across topology x policy x faults x threads x shards,
# every invariant armed, exports compared byte-for-byte at THREADS=1 vs k
# and (for the cluster-partitioned sim) at 1 shard vs k shards.
./target/release/fuzz_configs --count 64

echo "== tier-1: sharded determinism smoke =="
# The determinism suite under both shard settings with invariants armed:
# the sharded engine must export byte-identically at any ECOSCALE_SHARDS.
ECOSCALE_SHARDS=1 ECOSCALE_CHECK=1 cargo test -q --test determinism
ECOSCALE_SHARDS=4 ECOSCALE_CHECK=1 cargo test -q --test determinism

echo "== tier-1: parallel DES bench smoke =="
# Reduced workload; asserts 1-vs-N-shard byte identity and validates the
# BENCH_parallel_des.json schema by re-parsing what it wrote.
./target/release/bench_parallel_des --smoke --out target/bench_parallel_des_smoke.json

echo "== tier-1: serving bench smoke (bench_serve) =="
# Reduced serving workload: batching on/off/faulted lanes; the binary
# itself asserts conservation, zero lost requests under faults, the
# strict batching goodput win, and bounded p99 degradation.
./target/release/bench_serve --quick --out target/bench_serve_smoke.json

echo "== tier-1: perf-regression gate (bench_regress) =="
# Fresh full-config run vs the committed baseline. Deterministic fields
# (events, rounds, critical-path speedup bounds) must reproduce the
# baseline exactly; wall-clock fields get a ratio tolerance. The default
# 3x (documented in crates/bench/src/regress.rs) is widened to 8x here:
# CI hosts vary and share cores, and the gate exists to catch
# order-of-magnitude regressions, not scheduler noise.
./target/release/bench_parallel_des --out target/bench_parallel_des_fresh.json
./target/release/bench_regress --tolerance 8 \
    BENCH_parallel_des.json target/bench_parallel_des_fresh.json
# The serving artifact is fully deterministic (no wall-clock fields), so
# the same gate compares it exactly against the committed baseline.
./target/release/bench_serve --out target/bench_serve_fresh.json
./target/release/bench_regress --tolerance 8 \
    BENCH_serve.json target/bench_serve_fresh.json

echo "== regenerate experiment snapshot (target/) =="
./target/release/exp_all > target/bench_output_tables.txt

echo "== workspace tests =="
cargo test --workspace -q

echo "== workspace tests (invariants armed) =="
# One full pass with every layer's CheckPlane hooks firing at cadence 1.
ECOSCALE_CHECK=1 cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci.sh: all green"
