#!/usr/bin/env bash
# Tier-1 gate plus lints. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors what the roadmap calls the tier-1 command (`cargo build
# --release && cargo test -q`) and adds deny-warnings clippy, rustfmt,
# and rustdoc passes over every target. The workspace is
# dependency-free, so everything works offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --check

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci.sh: all green"
